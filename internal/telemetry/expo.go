package telemetry

import (
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"time"
)

// WriteProm writes the registry in the Prometheus text exposition format
// (version 0.0.4): a # TYPE line per family, one sample line per series,
// histograms expanded into cumulative _bucket/_sum/_count samples.
func (r *Registry) WriteProm(w io.Writer) error {
	snap := r.Snapshot()
	for _, m := range snap.Metrics {
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", m.Name, m.Kind); err != nil {
			return err
		}
		for _, s := range m.Series {
			if m.Kind != "histogram" {
				if _, err := fmt.Fprintf(w, "%s%s %s\n",
					m.Name, promLabels(s.Labels, "", 0), promFloat(s.Value)); err != nil {
					return err
				}
				continue
			}
			for _, b := range s.Buckets {
				if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
					m.Name, promLabels(s.Labels, "le", b.LE), b.Count); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintf(w, "%s_sum%s %s\n%s_count%s %d\n",
				m.Name, promLabels(s.Labels, "", 0), promFloat(s.Sum),
				m.Name, promLabels(s.Labels, "", 0), s.Count); err != nil {
				return err
			}
		}
	}
	return nil
}

// promFloat renders a sample value the way Prometheus clients do.
func promFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promLabels renders a label set, optionally extended with an le bound.
func promLabels(labels Labels, extraKey string, le float64) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	if extraKey != "" {
		if len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", extraKey, promFloat(le))
	}
	b.WriteByte('}')
	return b.String()
}

// Handler serves the registry in the text exposition format — mount it at
// /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = r.WriteProm(w)
	})
}

// Server is a running metrics endpoint started by Serve.
type Server struct {
	// Addr is the bound address (useful with ":0").
	Addr string

	srv *http.Server
	ln  net.Listener
}

// Close shuts the endpoint down.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}

// Serve binds addr (":0" picks a free port) and serves the observability
// surface in a background goroutine:
//
//	/metrics        Prometheus text exposition
//	/metrics.json   JSON snapshot (buckets, quantiles)
//	/debug/pprof/   the standard net/http/pprof handlers
//
// The pprof handlers ride along because the paper-level question "which
// stage is slow?" (metrics) usually escalates to "what is it doing?"
// (profiles); one flag serves both.
func Serve(addr string, r *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", r.Handler())
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &Server{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}
