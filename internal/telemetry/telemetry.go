// Package telemetry is the repository's observability subsystem: a
// concurrent metrics registry (counters, gauges, histograms), lightweight
// trace spans with per-item stream tracing, and two sinks — a
// Prometheus-text-exposition http.Handler (served next to net/http/pprof by
// Serve) and a JSON snapshot writer.
//
// The paper's whole argument rests on quantities that are invisible at
// runtime without it: per-stage service time (which stage is the
// bottleneck?), queue occupancy between pipeline stages (FastFlow's
// lock-free queues exist to absorb inter-stage backpressure), and
// transfer/compute overlap on the GPU streams (Fig. 1's optimization ladder
// is a story about hiding transfer latency). Every runtime layer —
// internal/ff, internal/core, internal/tbb, internal/gpu and its facades —
// accepts a *Registry and publishes into it; the cmd binaries expose the
// registry via -metrics-addr and -trace-out.
//
// Design constraints, in order:
//
//   - Nil-safe: a nil *Registry hands out nil instruments whose methods
//     no-op, so instrumented code needs no "is telemetry on?" branching and
//     disabled telemetry costs one predictable nil check per event.
//   - Race-free: instruments are atomics; registration is mutex-guarded
//     get-or-create; a scraper goroutine may snapshot while every pipeline
//     stage writes (the whole tree runs under -race in CI).
//   - Stdlib only.
//
// Metric naming follows the Prometheus conventions: snake_case, the unit as
// suffix (_seconds, _bytes), monotonic counters end in _total. Labels
// identify the instance (pipeline, stage, device, stream); keep their
// cardinality bounded by the process's structure, never by its data. Note
// that metrics published by the simulated GPU (internal/gpu) are measured in
// virtual time — see DESIGN.md §9.
package telemetry

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Labels identifies one series of a metric family.
type Labels map[string]string

// Kind discriminates metric families.
type Kind int

// The three metric kinds.
const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the Prometheus TYPE name of the kind.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Registry is a concurrent metric registry. The zero value is not usable;
// create one with New. A nil *Registry is valid everywhere and hands out
// no-op instruments, so instrumented code can treat "telemetry disabled" and
// "telemetry enabled" identically.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// family is every series registered under one metric name.
type family struct {
	name   string
	kind   Kind
	series map[string]*series // by rendered label key
}

// series is one labelled instrument of a family.
type series struct {
	labels  Labels
	key     string
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// New creates an empty registry.
func New() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// labelKey renders labels deterministically: sorted k="v" pairs.
func labelKey(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, labels[k])
	}
	return b.String()
}

// lookup returns the series for (name, labels) under kind, creating family,
// series, and instrument as needed — all under the registry lock, so two
// goroutines racing to first-use the same series get the same instrument
// (buckets only matters for histograms). Registering an existing name with
// a different kind is a programming error and panics (the metriclabel
// analyzer catches the static cases).
func (r *Registry) lookup(kind Kind, name string, labels Labels, buckets []float64) *series {
	if name == "" {
		panic("telemetry: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	fam := r.families[name]
	if fam == nil {
		fam = &family{name: name, kind: kind, series: make(map[string]*series)}
		r.families[name] = fam
	}
	if fam.kind != kind {
		panic(fmt.Sprintf("telemetry: metric %q already registered as a %s, now requested as a %s",
			name, fam.kind, kind))
	}
	key := labelKey(labels)
	s := fam.series[key]
	if s == nil {
		cp := make(Labels, len(labels))
		for k, v := range labels {
			cp[k] = v
		}
		s = &series{labels: cp, key: key}
		fam.series[key] = s
	}
	switch kind {
	case KindCounter:
		if s.counter == nil {
			s.counter = &Counter{}
		}
	case KindGauge:
		if s.gauge == nil {
			s.gauge = &Gauge{}
		}
	case KindHistogram:
		if s.hist == nil {
			s.hist = newHistogram(buckets)
		}
	}
	return s
}

// Counter returns the counter registered under (name, labels), creating it
// on first use. Calling on a nil registry returns a nil (no-op) counter.
func (r *Registry) Counter(name string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(KindCounter, name, labels, nil).counter
}

// Gauge returns the gauge registered under (name, labels), creating it on
// first use. Calling on a nil registry returns a nil (no-op) gauge.
func (r *Registry) Gauge(name string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(KindGauge, name, labels, nil).gauge
}

// GaugeFunc registers a callback gauge: fn is invoked at snapshot time.
// Re-registering the same (name, labels) replaces the callback — pipelines
// that rebuild their queues on every Run re-point the gauge at the live
// queue. fn must be safe to call from the scraper goroutine.
func (r *Registry) GaugeFunc(name string, labels Labels, fn func() float64) {
	if r == nil {
		return
	}
	g := r.Gauge(name, labels)
	g.fn.Store(fn)
}

// Histogram returns the histogram registered under (name, labels), creating
// it with the given bucket upper bounds on first use (nil buckets selects
// SecondsBuckets). Later calls ignore buckets and return the existing
// instrument. Calling on a nil registry returns a nil (no-op) histogram.
func (r *Registry) Histogram(name string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(KindHistogram, name, labels, buckets).hist
}

// Snapshot captures every metric at one instant, sorted by family name and
// label key, for the exposition and JSON sinks.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{TakenAt: time.Now()}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		m := Metric{Name: f.name, Kind: f.kind.String()}
		r.mu.Lock()
		ss := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ss = append(ss, s)
		}
		r.mu.Unlock()
		sort.Slice(ss, func(i, j int) bool { return ss[i].key < ss[j].key })
		for _, s := range ss {
			m.Series = append(m.Series, s.snapshot(f.kind))
		}
		snap.Metrics = append(snap.Metrics, m)
	}
	return snap
}
