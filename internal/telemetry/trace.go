package telemetry

import (
	"encoding/json"
	"io"
	"os"
	"sync"
	"time"
)

// Tracer collects completed spans into a bounded in-memory buffer. Spans
// model host-side phases (prepare, run, write) with parent/child nesting;
// for the high-frequency per-item view use StreamTracer instead. A nil
// *Tracer is valid and records nothing.
type Tracer struct {
	mu      sync.Mutex
	cap     int
	nextID  int64
	spans   []SpanRecord
	dropped int64
}

// DefaultTraceCap bounds trace buffers when no capacity is given.
const DefaultTraceCap = 4096

// NewTracer creates a tracer retaining at most capacity completed spans
// (<= 0 selects DefaultTraceCap). The oldest spans are dropped first.
func NewTracer(capacity int) *Tracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{cap: capacity}
}

// Span is one in-flight operation. Annotate and End must be called from the
// goroutine that started the span; a nil *Span no-ops everywhere.
type Span struct {
	t      *Tracer
	id     int64
	parent int64
	name   string
	start  time.Time
	attrs  map[string]string
}

// SpanRecord is a completed span as retained (and serialized) by the tracer.
type SpanRecord struct {
	ID       int64             `json:"id"`
	Parent   int64             `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Start    time.Time         `json:"start"`
	Duration time.Duration     `json:"duration_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
}

// Start opens a root span.
func (t *Tracer) Start(name string) *Span { return t.start(name, 0) }

func (t *Tracer) start(name string, parent int64) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	t.nextID++
	id := t.nextID
	t.mu.Unlock()
	return &Span{t: t, id: id, parent: parent, name: name, start: time.Now()}
}

// Child opens a span nested under s.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.start(name, s.id)
}

// Annotate attaches a key/value attribute to the span.
func (s *Span) Annotate(key, value string) {
	if s == nil {
		return
	}
	if s.attrs == nil {
		s.attrs = make(map[string]string)
	}
	s.attrs[key] = value
}

// End completes the span and hands it to the tracer.
func (s *Span) End() {
	if s == nil {
		return
	}
	rec := SpanRecord{
		ID: s.id, Parent: s.parent, Name: s.name,
		Start: s.start, Duration: time.Since(s.start), Attrs: s.attrs,
	}
	t := s.t
	t.mu.Lock()
	if len(t.spans) >= t.cap {
		t.spans = t.spans[1:]
		t.dropped++
	}
	t.spans = append(t.spans, rec)
	t.mu.Unlock()
}

// Spans returns a copy of the retained (completed) spans, oldest first.
func (t *Tracer) Spans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.spans))
	copy(out, t.spans)
	return out
}

// Dropped reports how many completed spans were evicted by the cap.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// ItemSpan is one stage visit of one stream item: the per-item trace unit.
// Item ids are per-stage arrival sequence numbers — in an ordered pipeline
// they coincide with the stream position; in an unordered farm they identify
// arrival order at that stage.
type ItemSpan struct {
	Item  int64     `json:"item"`
	Stage string    `json:"stage"`
	Enter time.Time `json:"enter"`
	Exit  time.Time `json:"exit"`
}

// StreamTracer records per-item stage enter/exit timestamps into a bounded
// buffer (oldest dropped first). It is the runtime-facing half of -trace-out:
// internal/ff feeds it when a pipeline has one attached. A nil *StreamTracer
// records nothing, so the hot path pays one nil check when tracing is off.
type StreamTracer struct {
	mu      sync.Mutex
	cap     int
	events  []ItemSpan
	dropped int64
}

// NewStreamTracer creates a stream tracer retaining at most capacity item
// spans (<= 0 selects DefaultTraceCap).
func NewStreamTracer(capacity int) *StreamTracer {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &StreamTracer{cap: capacity}
}

// Observe records one item's visit to one stage.
func (st *StreamTracer) Observe(item int64, stage string, enter, exit time.Time) {
	if st == nil {
		return
	}
	st.mu.Lock()
	if len(st.events) >= st.cap {
		st.events = st.events[1:]
		st.dropped++
	}
	st.events = append(st.events, ItemSpan{Item: item, Stage: stage, Enter: enter, Exit: exit})
	st.mu.Unlock()
}

// Events returns a copy of the retained item spans, oldest first.
func (st *StreamTracer) Events() []ItemSpan {
	if st == nil {
		return nil
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]ItemSpan, len(st.events))
	copy(out, st.events)
	return out
}

// Dropped reports how many item spans were evicted by the cap.
func (st *StreamTracer) Dropped() int64 {
	if st == nil {
		return 0
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.dropped
}

// Trace is the -trace-out document: host-phase spans plus per-item stage
// visits.
type Trace struct {
	Spans        []SpanRecord `json:"spans,omitempty"`
	Items        []ItemSpan   `json:"items,omitempty"`
	SpansDropped int64        `json:"spans_dropped,omitempty"`
	ItemsDropped int64        `json:"items_dropped,omitempty"`
}

// WriteTrace writes both tracers (either may be nil) as one JSON document.
func WriteTrace(w io.Writer, t *Tracer, st *StreamTracer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(Trace{
		Spans: t.Spans(), Items: st.Events(),
		SpansDropped: t.Dropped(), ItemsDropped: st.Dropped(),
	})
}

// WriteTraceFile writes the trace document to path (the -trace-out flag).
func WriteTraceFile(path string, t *Tracer, st *StreamTracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, t, st); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
