package telemetry

import (
	"math"
	"sync/atomic"
	"time"

	"streamgpu/internal/stats"
)

// Counter is a monotonically increasing metric (items processed, bytes
// transferred, faults injected). All methods are safe on a nil receiver and
// under concurrency.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds n (n < 0 is ignored; counters are monotonic).
func (c *Counter) Add(n int64) {
	if c == nil || n < 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down (queue depth, outstanding
// operations, tokens in flight). A gauge may instead be backed by a callback
// installed with Registry.GaugeFunc; the callback then wins at read time.
type Gauge struct {
	bits atomic.Uint64
	fn   atomic.Value // func() float64, set by GaugeFunc
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d (negative to decrement).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the gauge reading (the callback's, if one is installed).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	if fn, ok := g.fn.Load().(func() float64); ok && fn != nil {
		return fn()
	}
	return math.Float64frombits(g.bits.Load())
}

// SecondsBuckets is the default histogram bucketing for durations:
// exponential from 1µs to 16s, wide enough for both real service times and
// the GPU model's virtual transfer/kernel durations.
var SecondsBuckets = []float64{
	1e-6, 4e-6, 16e-6, 64e-6, 256e-6, 1e-3, 4e-3, 16e-3, 64e-3, 0.25, 1, 4, 16,
}

// Histogram is a concurrent fixed-bucket histogram. Observations are
// lock-free; Snapshot converts to a stats.Histogram for quantile estimates
// and rendering. All methods are safe on a nil receiver.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64 // len(bounds)+1; last is +Inf
	count   atomic.Int64
	sumBits atomic.Uint64
}

// NewHistogram builds a standalone histogram outside any registry; nil
// bounds selects SecondsBuckets. The serving layer's admission estimator
// uses one so its queue-wait quantiles exist even when metrics are off.
func NewHistogram(bounds []float64) *Histogram { return newHistogram(bounds) }

// newHistogram builds the instrument; nil bounds selects SecondsBuckets.
func newHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = SecondsBuckets
	}
	// Validate through stats.NewHistogram (panics on unsorted bounds).
	stats.NewHistogram(bounds...)
	cp := make([]float64, len(bounds))
	copy(cp, bounds)
	return &Histogram{bounds: cp, counts: make([]atomic.Int64, len(cp)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := len(h.bounds)
	for j, b := range h.bounds {
		if v <= b {
			i = j
			break
		}
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records d in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// ObserveSince records the elapsed time since start, in seconds.
func (h *Histogram) ObserveSince(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Snapshot returns a point-in-time copy as a stats.Histogram. The copy is
// internally consistent enough for reporting (buckets, sum and count are
// read while writers may be active, so they can disagree by in-flight
// observations).
func (h *Histogram) Snapshot() *stats.Histogram {
	if h == nil {
		return &stats.Histogram{}
	}
	out := stats.NewHistogram(h.bounds...)
	for i := range h.counts {
		out.Counts[i] = h.counts[i].Load()
	}
	out.Count = h.count.Load()
	out.Sum = math.Float64frombits(h.sumBits.Load())
	return out
}

// snapshot renders one series for Registry.Snapshot.
func (s *series) snapshot(kind Kind) Series {
	out := Series{Labels: s.labels}
	switch kind {
	case KindCounter:
		out.Value = float64(s.counter.Value())
	case KindGauge:
		out.Value = s.gauge.Value()
	case KindHistogram:
		hs := s.hist.Snapshot()
		out.Count = hs.Count
		out.Sum = hs.Sum
		var cum int64
		for i, b := range hs.Bounds {
			cum += hs.Counts[i]
			out.Buckets = append(out.Buckets, Bucket{LE: b, Count: cum})
		}
		cum += hs.Counts[len(hs.Bounds)]
		out.Buckets = append(out.Buckets, Bucket{LE: math.Inf(1), Count: cum})
		if hs.Count > 0 {
			out.Quantiles = map[string]float64{
				"p50": hs.Quantile(0.50),
				"p90": hs.Quantile(0.90),
				"p99": hs.Quantile(0.99),
			}
		}
	}
	return out
}
