package telemetry

import (
	"encoding/json"
	"io"
	"time"
)

// Snapshot is every metric of a registry at one instant — the JSON sink's
// document and the exposition writer's input.
type Snapshot struct {
	TakenAt time.Time `json:"taken_at"`
	Metrics []Metric  `json:"metrics"`
}

// Metric is one family: a name, a kind, and its labelled series.
type Metric struct {
	Name   string   `json:"name"`
	Kind   string   `json:"kind"`
	Series []Series `json:"series"`
}

// Series is one labelled instrument's reading.
type Series struct {
	Labels Labels `json:"labels,omitempty"`
	// Value carries counter and gauge readings.
	Value float64 `json:"value"`
	// Histogram readings: cumulative buckets plus estimated quantiles.
	Count     int64              `json:"count,omitempty"`
	Sum       float64            `json:"sum,omitempty"`
	Buckets   []Bucket           `json:"buckets,omitempty"`
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Bucket is one cumulative histogram bucket (Prometheus "le" semantics).
type Bucket struct {
	LE    float64 `json:"le"`
	Count int64   `json:"count"`
}

// MarshalJSON renders +Inf as the string "+Inf" (JSON has no infinities).
func (b Bucket) MarshalJSON() ([]byte, error) {
	type alias struct {
		LE    any   `json:"le"`
		Count int64 `json:"count"`
	}
	var le any = b.LE
	if b.LE > 1e308 {
		le = "+Inf"
	}
	return json.Marshal(alias{LE: le, Count: b.Count})
}

// WriteJSON writes the registry's current snapshot as indented JSON — the
// machine-readable sink behind the cmd binaries' snapshot output and the
// /metrics.json endpoint.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
