// Package ff is a FastFlow-style stream-parallel runtime: pipelines and
// farms of nodes running on dedicated goroutines, connected by bounded
// lock-free single-producer/single-consumer queues.
//
// The architecture follows FastFlow's building-block model [Aldinucci et
// al.]: every node owns a thread of execution; communication topologies
// (pipeline, farm, ordered farm) are composed from SPSC channels only —
// a farm's emitter owns one queue per worker and its collector gathers from
// one queue per worker, so no queue ever has two producers or two
// consumers. The runtime supports blocking and spinning modes, round-robin
// and on-demand task scheduling, and an ordered farm that restores input
// order at the collector (used by Mandelbrot's display stage and Dedup's
// reorder stage).
package ff

import (
	"runtime"
	"sync/atomic"
	"time"
)

// cacheLinePad separates hot atomics to avoid false sharing between the
// producer and consumer cores.
type cacheLinePad struct{ _ [64]byte }

// SPSC is a bounded lock-free single-producer/single-consumer ring queue —
// the communication primitive FastFlow builds everything on. Exactly one
// goroutine may call the producer methods (TryPush/Push) and exactly one
// the consumer methods (TryPop/Pop).
type SPSC[T any] struct {
	buf  []T
	mask uint64
	_    cacheLinePad
	head atomic.Uint64 // next slot to read (consumer-owned)
	_    cacheLinePad
	tail atomic.Uint64 // next slot to write (producer-owned)
	_    cacheLinePad
	// spin selects the wait strategy for the blocking Push/Pop helpers.
	spin bool
}

// NewSPSC creates a queue with capacity rounded up to a power of two
// (minimum 2). spinning selects busy-wait backoff for the blocking helpers;
// otherwise they yield and briefly sleep under contention (FastFlow's
// blocking mode).
func NewSPSC[T any](capacity int, spinning bool) *SPSC[T] {
	if capacity < 2 {
		capacity = 2
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	return &SPSC[T]{buf: make([]T, c), mask: uint64(c - 1), spin: spinning}
}

// Cap reports the queue capacity.
func (q *SPSC[T]) Cap() int { return len(q.buf) }

// Len reports an instantaneous element count (approximate under
// concurrency).
func (q *SPSC[T]) Len() int {
	return int(q.tail.Load() - q.head.Load())
}

// TryPush appends v if there is room. Producer-side only.
func (q *SPSC[T]) TryPush(v T) bool {
	t := q.tail.Load()
	if t-q.head.Load() >= uint64(len(q.buf)) {
		return false
	}
	q.buf[t&q.mask] = v
	q.tail.Store(t + 1)
	return true
}

// TryPop removes the oldest element if present. Consumer-side only.
func (q *SPSC[T]) TryPop() (v T, ok bool) {
	h := q.head.Load()
	if h == q.tail.Load() {
		return v, false
	}
	v = q.buf[h&q.mask]
	var zero T
	q.buf[h&q.mask] = zero // release the reference for GC
	q.head.Store(h + 1)
	return v, true
}

// TryPushN appends up to len(vs) elements and reports how many were
// enqueued. The whole burst becomes visible with a single tail publish, so
// the per-element atomic cost shrinks with burst size (FastFlow's multipush
// optimization). Producer-side only.
func (q *SPSC[T]) TryPushN(vs []T) int {
	t := q.tail.Load()
	free := uint64(len(q.buf)) - (t - q.head.Load())
	n := uint64(len(vs))
	if n > free {
		n = free
	}
	if n == 0 {
		return 0
	}
	for i := uint64(0); i < n; i++ {
		q.buf[(t+i)&q.mask] = vs[i]
	}
	q.tail.Store(t + n)
	return int(n)
}

// TryPopN removes up to len(dst) of the oldest elements into dst and
// reports how many were transferred, publishing the head once for the whole
// burst. Consumer-side only.
func (q *SPSC[T]) TryPopN(dst []T) int {
	h := q.head.Load()
	avail := q.tail.Load() - h
	n := uint64(len(dst))
	if n > avail {
		n = avail
	}
	if n == 0 {
		return 0
	}
	var zero T
	for i := uint64(0); i < n; i++ {
		idx := (h + i) & q.mask
		dst[i] = q.buf[idx]
		q.buf[idx] = zero // release the reference for GC
	}
	q.head.Store(h + n)
	return int(n)
}

// Push blocks (with backoff) until v is enqueued.
func (q *SPSC[T]) Push(v T) {
	var b backoff
	b.spin = q.spin
	for !q.TryPush(v) {
		b.wait()
	}
}

// Pop blocks (with backoff) until an element is available.
func (q *SPSC[T]) Pop() T {
	var b backoff
	b.spin = q.spin
	for {
		if v, ok := q.TryPop(); ok {
			return v
		}
		b.wait()
	}
}

// maxParkSleep caps the adaptive park interval: long enough that an idle
// stage costs next to nothing, short enough that wake-up latency stays well
// under a stage service time.
const maxParkSleep = 512 * time.Microsecond

// backoff implements the graduated wait strategy: spin, then yield, then —
// in blocking mode — park with exponentially growing sleeps (1µs doubling
// to maxParkSleep). A fixed sleep either burns CPU on an idle queue or adds
// a full sleep of latency to a nearly-ready one; the doubling ramp adapts
// to whichever case this wait turns out to be. Spinning mode never sleeps,
// trading CPU for latency as FastFlow's non-blocking mode does.
type backoff struct {
	n     int
	sleep time.Duration
	spin  bool
}

func (b *backoff) wait() {
	switch {
	case b.n < 64:
		// busy spin
	case b.spin || b.n < 192:
		runtime.Gosched()
	default:
		if b.sleep == 0 {
			b.sleep = time.Microsecond
		}
		time.Sleep(b.sleep)
		if b.sleep < maxParkSleep {
			b.sleep *= 2
		}
	}
	b.n++
}

func (b *backoff) reset() { b.n = 0; b.sleep = 0 }
