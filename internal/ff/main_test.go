package ff

import (
	"testing"

	"streamgpu/internal/testutil"
)

// TestMain fails the package if any test leaves pipeline goroutines behind:
// every ff node must join on Wait/cancel, even on error paths.
func TestMain(m *testing.M) { testutil.Main(m) }
