package ff

import (
	"fmt"
	"sync"
)

// seqOut carries the ordered-farm bookkeeping: the outputs a worker
// produced for input number seq (possibly none, possibly several via
// SendOut).
type seqOut struct {
	seq  uint64
	vals []any
}

// seqIn wraps an input with its sequence number on the way to a worker.
type seqIn struct {
	seq uint64
	val any
}

// Farm is the FastFlow task-farm: an emitter scheduling tasks over
// replicated workers and a collector gathering results (ff_farm /
// ff_OFarm). Zero-value options give a round-robin, unordered farm with a
// forwarding collector.
type Farm struct {
	workers   []Node
	emitter   Node
	collector Node
	ordered   bool
	onDemand  bool
}

// FarmOpt configures a Farm.
type FarmOpt func(*Farm)

// WithEmitter installs a custom emitter node. In a farm used as a
// pipeline's first stage the emitter acts as the stream source.
func WithEmitter(n Node) FarmOpt { return func(f *Farm) { f.emitter = n } }

// WithCollector installs a custom collector node that post-processes every
// gathered result.
func WithCollector(n Node) FarmOpt { return func(f *Farm) { f.collector = n } }

// Ordered makes the farm emit results in input order (ff_OFarm), the mode
// Mandelbrot's display stage and Dedup's reorder stage need.
func Ordered() FarmOpt { return func(f *Farm) { f.ordered = true } }

// OnDemand switches scheduling from round-robin to on-demand: tasks go to
// the first worker with queue space, balancing skewed workloads.
func OnDemand() FarmOpt { return func(f *Farm) { f.onDemand = true } }

// NewFarm builds a farm over the given worker nodes.
func NewFarm(workers []Node, opts ...FarmOpt) *Farm {
	if len(workers) == 0 {
		panic("ff: farm with no workers")
	}
	f := &Farm{workers: workers}
	for _, o := range opts {
		o(f)
	}
	return f
}

// NWorkers reports the farm's parallelism degree.
func (f *Farm) NWorkers() int { return len(f.workers) }

// start wires the farm into a pipeline position. in == nil means the farm
// is the first stage (its emitter must then generate the stream); out ==
// nil means last stage.
func (f *Farm) start(pl *Pipeline, tm *stageTelem, in, out *SPSC[any], wg *sync.WaitGroup) {
	if in == nil && f.emitter == nil {
		panic("ff: farm used as source needs an emitter node")
	}
	nw := len(f.workers)
	wqs := make([]*SPSC[any], nw) // emitter -> worker i
	for i := range wqs {
		wqs[i] = NewSPSC[any](pl.queueCap, pl.spinning)
	}
	// All workers fan into one MPMC collector queue: the collector pops
	// bursts from a single ring instead of polling nw SPSC queues, so an
	// idle worker costs it nothing and a hot worker's results are never
	// stuck behind an empty queue in the round-robin. Capacity preserves the
	// per-worker budget of the old cqs.
	cq := NewMPMC[any](pl.queueCap*nw, pl.spinning)
	tm.registerFarmQueueGauges(wqs, cq)

	// --- emitter ---
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.runEmitter(pl, tm, in, wqs)
	}()

	// --- workers ---
	for i := range f.workers {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			f.runWorker(pl, tm, i, wqs[i], cq)
		}(i)
	}

	// --- collector ---
	wg.Add(1)
	go func() {
		defer wg.Done()
		f.runCollector(pl, tm, cq, len(f.workers), out)
	}()
}

// runEmitter pulls tasks (from the pipeline input or by invoking a source
// emitter) and schedules them over the workers.
func (f *Farm) runEmitter(pl *Pipeline, tm *stageTelem, in *SPSC[any], wqs []*SPSC[any]) {
	var seq uint64
	next := 0
	schedule := func(v any) {
		if pl.Canceled() {
			return
		}
		tm.itemIn()
		if f.ordered {
			v = seqIn{seq: seq, val: v}
			seq++
		}
		if f.onDemand {
			var b backoff
			b.spin = pl.spinning
			for {
				if wqs[next].TryPush(v) {
					next = (next + 1) % len(wqs)
					return
				}
				next = (next + 1) % len(wqs)
				if next == 0 {
					b.wait()
				}
			}
		}
		wqs[next].Push(v)
		next = (next + 1) % len(wqs)
	}

	em := f.emitter
	if em != nil {
		if on, ok := em.(OutNode); ok {
			on.setOut(schedule)
		}
		if !initSafe(pl, em, "emitter") {
			em = nil // degrade to forwarding, then EOS below
		}
	}
	switch {
	case in == nil:
		// Farm as source: the emitter generates the stream.
		for em != nil && !pl.Canceled() {
			r, ok := svcSafe(pl, em, nil, "emitter")
			if !ok || r == EOS {
				break
			}
			if r != GoOn {
				schedule(r)
			}
		}
	case em == nil:
		// Pure scheduler: forward pipeline input, a burst at a time.
		var burst [burstCap]any
	forward:
		for {
			got := in.TryPopN(burst[:])
			if got == 0 {
				burst[0] = in.Pop()
				got = 1
			}
			for j := 0; j < got; j++ {
				t := burst[j]
				burst[j] = nil
				if t == EOS {
					break forward
				}
				if pl.Canceled() {
					tm.dropped(1 + drainBurst(in, burst[j+1:got]))
					break forward
				}
				schedule(t)
			}
		}
	default:
		var burst [burstCap]any
	emit:
		for {
			got := in.TryPopN(burst[:])
			if got == 0 {
				burst[0] = in.Pop()
				got = 1
			}
			for j := 0; j < got; j++ {
				t := burst[j]
				burst[j] = nil
				if t == EOS {
					break emit
				}
				if pl.Canceled() {
					tm.dropped(1 + drainBurst(in, burst[j+1:got]))
					break emit
				}
				r, ok := svcSafe(pl, em, t, "emitter")
				if !ok || r == EOS {
					if !ok {
						tm.errored()
					}
					tm.dropped(drainBurst(in, burst[j+1:got]))
					break emit
				}
				if r != GoOn {
					schedule(r)
				}
			}
		}
	}
	if em != nil {
		endSafe(pl, em, "emitter")
	}
	for _, wq := range wqs {
		wq.Push(EOS)
	}
}

// runWorker executes one replica's service loop. Service times and per-item
// traces are observed here: the workers are where a farm stage spends its
// time.
func (f *Farm) runWorker(pl *Pipeline, tm *stageTelem, i int, wq *SPSC[any], cq *MPMC[any]) {
	w := f.workers[i]
	where := fmt.Sprintf("worker %d", i)
	// Multi-output plumbing: unordered workers push straight to their
	// collector queue; ordered workers accumulate into the per-input
	// output list so sequencing survives SendOut and GoOn.
	var pending *seqOut
	if on, ok := w.(OutNode); ok {
		on.setOut(func(v any) {
			if f.ordered {
				pending.vals = append(pending.vals, v)
				return
			}
			cq.Push(v)
		})
	}
	if !initSafe(pl, w, where) {
		tm.errored()
		tm.dropped(drain(wq))
		cq.Push(EOS)
		return
	}
	var burst [burstCap]any
serve:
	for {
		got := wq.TryPopN(burst[:])
		if got == 0 {
			burst[0] = wq.Pop()
			got = 1
		}
		for j := 0; j < got; j++ {
			t := burst[j]
			burst[j] = nil
			if t == EOS {
				break serve
			}
			if pl.Canceled() {
				tm.dropped(1 + drainBurst(wq, burst[j+1:got]))
				break serve
			}
			if f.ordered {
				si := t.(seqIn)
				pending = &seqOut{seq: si.seq}
				t0 := tm.svcStart()
				r, ok := svcSafe(pl, w, si.val, where)
				tm.svcEnd(t0)
				if r != GoOn && r != EOS && ok {
					pending.vals = append(pending.vals, r)
				}
				cq.Push(*pending)
				pending = nil
				if !ok || r == EOS {
					if !ok {
						tm.errored()
					}
					tm.dropped(drainBurst(wq, burst[j+1:got]))
					break serve
				}
				continue
			}
			t0 := tm.svcStart()
			r, ok := svcSafe(pl, w, t, where)
			tm.svcEnd(t0)
			if !ok || r == EOS {
				if !ok {
					tm.errored()
				}
				tm.dropped(drainBurst(wq, burst[j+1:got]))
				break serve
			}
			if r != GoOn {
				cq.Push(r)
			}
		}
	}
	endSafe(pl, w, where)
	cq.Push(EOS)
}

// runCollector gathers worker results (burst pops off the shared MPMC
// fan-in queue), restores order if requested, applies the collector node,
// and forwards downstream.
func (f *Farm) runCollector(pl *Pipeline, tm *stageTelem, cq *MPMC[any], nworkers int, out *SPSC[any]) {
	col := f.collector
	send := func(v any) {
		if out != nil && !pl.Canceled() {
			out.Push(v)
			tm.itemOut()
		}
	}
	if col != nil {
		if on, ok := col.(OutNode); ok {
			on.setOut(send)
		}
		if !initSafe(pl, col, "collector") {
			col = nil
		}
	}
	handle := func(v any) {
		if pl.Canceled() {
			return
		}
		if col != nil {
			r, ok := svcSafe(pl, col, v, "collector")
			if !ok {
				tm.errored()
				col = nil // stream is canceled; keep draining without it
				return
			}
			if r != GoOn && r != EOS {
				send(r)
			}
			return
		}
		send(v)
	}

	// Ordered reorder buffer.
	buffered := make(map[uint64][]any)
	var nextSeq uint64
	flush := func() {
		for {
			vals, ok := buffered[nextSeq]
			if !ok {
				return
			}
			delete(buffered, nextSeq)
			for _, v := range vals {
				handle(v)
			}
			nextSeq++
		}
	}

	eos := 0
	var b backoff
	b.spin = pl.spinning
	var burst [burstCap]any
	for eos < nworkers {
		got := cq.TryPopN(burst[:])
		if got == 0 {
			b.wait()
			continue
		}
		b.reset()
		for j := 0; j < got; j++ {
			v := burst[j]
			burst[j] = nil
			if v == EOS {
				eos++
				continue
			}
			if f.ordered {
				so := v.(seqOut)
				buffered[so.seq] = so.vals
				flush()
				continue
			}
			handle(v)
		}
	}
	if f.ordered {
		flush()
		if len(buffered) > 0 && !pl.Canceled() {
			pl.reportErr(fmt.Errorf("ff: ordered farm lost %d sequences", len(buffered)))
		}
	}
	if col != nil {
		endSafe(pl, col, "collector")
	}
	if out != nil {
		out.Push(EOS)
	}
}
