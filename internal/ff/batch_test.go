package ff

import (
	"fmt"
	"testing"

	"streamgpu/internal/pool"
)

func TestTryPushNPopN(t *testing.T) {
	q := NewSPSC[int](8, false)
	if n := q.TryPushN([]int{1, 2, 3, 4, 5}); n != 5 {
		t.Fatalf("TryPushN = %d, want 5", n)
	}
	// Only 3 slots remain.
	if n := q.TryPushN([]int{6, 7, 8, 9, 10}); n != 3 {
		t.Fatalf("TryPushN into near-full queue = %d, want 3", n)
	}
	if n := q.TryPushN([]int{99}); n != 0 {
		t.Fatalf("TryPushN into full queue = %d, want 0", n)
	}
	dst := make([]int, 4)
	if n := q.TryPopN(dst); n != 4 {
		t.Fatalf("TryPopN = %d, want 4", n)
	}
	for i, want := range []int{1, 2, 3, 4} {
		if dst[i] != want {
			t.Fatalf("dst[%d] = %d, want %d", i, dst[i], want)
		}
	}
	// Pop the rest; the queue holds 4 elements, dst asks for up to 8.
	big := make([]int, 8)
	if n := q.TryPopN(big); n != 4 {
		t.Fatalf("TryPopN = %d, want 4", n)
	}
	for i, want := range []int{5, 6, 7, 8} {
		if big[i] != want {
			t.Fatalf("big[%d] = %d, want %d", i, big[i], want)
		}
	}
	if n := q.TryPopN(big); n != 0 {
		t.Fatalf("TryPopN from empty queue = %d, want 0", n)
	}
}

// TestBatchOpsWraparound pushes and pops bursts across the ring's wrap
// point many times, checking FIFO order survives the index masking.
func TestBatchOpsWraparound(t *testing.T) {
	q := NewSPSC[int](16, false)
	in := make([]int, 5)
	out := make([]int, 5)
	next := 0
	expect := 0
	for round := 0; round < 100; round++ {
		for i := range in {
			in[i] = next
			next++
		}
		if n := q.TryPushN(in); n != 5 {
			t.Fatalf("round %d: TryPushN = %d, want 5", round, n)
		}
		if n := q.TryPopN(out); n != 5 {
			t.Fatalf("round %d: TryPopN = %d, want 5", round, n)
		}
		for _, v := range out {
			if v != expect {
				t.Fatalf("round %d: popped %d, want %d", round, v, expect)
			}
			expect++
		}
	}
}

// TestBatchOpsConcurrent streams a sequence through batched producer and
// consumer goroutines and checks nothing is lost, duplicated or reordered.
func TestBatchOpsConcurrent(t *testing.T) {
	const total = 1 << 16
	q := NewSPSC[int](256, false)
	done := make(chan error, 1)
	go func() {
		buf := make([]int, 32)
		expect := 0
		var b backoff
		for expect < total {
			n := q.TryPopN(buf)
			if n == 0 {
				b.wait()
				continue
			}
			b.reset()
			for i := 0; i < n; i++ {
				if buf[i] != expect {
					done <- fmt.Errorf("popped %d, want %d", buf[i], expect)
					return
				}
				expect++
			}
		}
		done <- nil
	}()
	buf := make([]int, 32)
	sent := 0
	var b backoff
	for sent < total {
		n := len(buf)
		if total-sent < n {
			n = total - sent
		}
		for i := 0; i < n; i++ {
			buf[i] = sent + i
		}
		pushed := q.TryPushN(buf[:n])
		if pushed == 0 {
			b.wait()
			continue
		}
		b.reset()
		sent += pushed
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

// TestSPSCBatchAllocs pins the batched transfer hot path to zero
// allocations.
func TestSPSCBatchAllocs(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	q := NewSPSC[int64](1024, false)
	buf := make([]int64, 64)
	allocs := testing.AllocsPerRun(1000, func() {
		if q.TryPushN(buf) != len(buf) {
			t.Fatal("push failed")
		}
		if q.TryPopN(buf) != len(buf) {
			t.Fatal("pop failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("TryPushN/TryPopN allocate %v per round trip, want 0", allocs)
	}
}

// TestSPSCSingleAllocs pins the single-element ops too: a value type must
// move through the ring without boxing.
func TestSPSCSingleAllocs(t *testing.T) {
	if pool.RaceEnabled {
		t.Skip("allocation counting is unreliable under -race")
	}
	q := NewSPSC[int64](8, false)
	allocs := testing.AllocsPerRun(1000, func() {
		if !q.TryPush(7) {
			t.Fatal("push failed")
		}
		if _, ok := q.TryPop(); !ok {
			t.Fatal("pop failed")
		}
	})
	if allocs != 0 {
		t.Fatalf("TryPush/TryPop allocate %v per round trip, want 0", allocs)
	}
}
