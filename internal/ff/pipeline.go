package ff

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// defaultQueueCap is the default bounded-queue capacity between nodes,
// matching FastFlow's default of 512 slots.
const defaultQueueCap = 512

// burstCap is the consumer-side burst size: service loops pop up to this
// many items per head publish (TryPopN), amortizing the queue's atomic
// traffic when a stage runs behind its producer.
const burstCap = 32

// stuckGrace bounds how long RunContext waits, after cancellation, for
// stages to notice and wind down. A stage stuck inside user code past this
// deadline is abandoned (its goroutine leaks; the process survives).
const stuckGrace = time.Second

// stage is anything that can occupy a pipeline position: a Node or a *Farm.
// tm carries the stage's telemetry instruments (nil when telemetry is off).
type stage interface {
	start(pl *Pipeline, tm *stageTelem, in, out *SPSC[any], wg *sync.WaitGroup)
}

// Pipeline composes stages connected by SPSC queues, one thread per plain
// node (ff_pipeline). Stages are Nodes or *Farms.
type Pipeline struct {
	stages   []stage
	queueCap int
	spinning bool
	tel      *pipeTelem

	// canceled aborts the stream: sources stop emitting, other stages drop
	// their inputs and drain. Set by Cancel, RunContext expiry, and the
	// first node failure.
	canceled atomic.Bool

	errMu sync.Mutex
	errs  []error
}

// NewPipeline builds a pipeline from stages. Each stage must be a Node, a
// *Farm, or a nested *Pipeline (FastFlow pipelines compose); anything else
// panics at construction (fail fast, as the FastFlow templates do at
// compile time).
func NewPipeline(stages ...any) *Pipeline {
	p := &Pipeline{queueCap: defaultQueueCap}
	for i, s := range stages {
		switch v := s.(type) {
		case *Farm:
			p.stages = append(p.stages, v)
		case *Pipeline:
			p.stages = append(p.stages, v)
		case Node:
			p.stages = append(p.stages, &nodeStage{node: v})
		default:
			panic(fmt.Sprintf("ff: pipeline stage %d is %T, want Node, *Farm or *Pipeline", i, s))
		}
	}
	if len(p.stages) == 0 {
		panic("ff: empty pipeline")
	}
	return p
}

// start wires this pipeline as a stage of an enclosing pipeline: its first
// stage consumes the outer input, its last feeds the outer output, and
// internal queues connect the rest. Errors propagate to the outer pipeline.
// The outer stage's telemetry is ignored: a nested pipeline observes through
// its own SetTelemetry configuration, so its stages keep their own names.
func (p *Pipeline) start(outer *Pipeline, _ *stageTelem, in, out *SPSC[any], wg *sync.WaitGroup) {
	n := len(p.stages)
	queues := make([]*SPSC[any], n-1)
	cap := p.queueCap
	if cap == 0 {
		cap = outer.queueCap
	}
	for i := range queues {
		queues[i] = NewSPSC[any](cap, outer.spinning)
	}
	p.registerQueueGauges(queues)
	for i, s := range p.stages {
		sin, sout := in, out
		if i > 0 {
			sin = queues[i-1]
		}
		if i < n-1 {
			sout = queues[i]
		}
		s.start(outer, p.newStageTelem(i), sin, sout, wg)
	}
}

// SetQueueCap sets the capacity of inter-stage queues (default 512).
func (p *Pipeline) SetQueueCap(n int) *Pipeline {
	if n < 2 {
		n = 2
	}
	p.queueCap = n
	return p
}

// SetSpinning selects non-blocking (busy-wait) queue mode; default is
// blocking mode.
func (p *Pipeline) SetSpinning(on bool) *Pipeline {
	p.spinning = on
	return p
}

// Cancel aborts the stream: the source stops generating, every other stage
// stops processing and drains its input so the pipeline winds down without
// deadlock. Already-emitted items may be dropped. Safe from any goroutine.
func (p *Pipeline) Cancel() { p.canceled.Store(true) }

// Canceled reports whether the stream has been aborted.
func (p *Pipeline) Canceled() bool { return p.canceled.Load() }

// reportErr records a node failure; the first one is returned by Run.
func (p *Pipeline) reportErr(err error) {
	p.errMu.Lock()
	p.errs = append(p.errs, err)
	p.errMu.Unlock()
}

// fail records a node failure and cancels the stream, so one broken stage
// stops the whole graph instead of leaving it running on garbage.
func (p *Pipeline) fail(err error) {
	p.reportErr(err)
	p.Cancel()
}

// firstErr returns the first recorded failure.
func (p *Pipeline) firstErr() error {
	p.errMu.Lock()
	defer p.errMu.Unlock()
	if len(p.errs) > 0 {
		return p.errs[0]
	}
	return nil
}

// Run starts every stage and blocks until the stream has fully drained
// (run_and_wait_end). It returns the first node error, if any. A panicking
// stage does not crash the process: the panic is recovered, reported as a
// node error and cancels the stream.
func (p *Pipeline) Run() error {
	return p.RunContext(context.Background())
}

// RunContext is Run under a context: when ctx expires the stream is
// canceled, the stages drain, and the context error is returned. A stage
// stuck in user code past a grace period is abandoned (its goroutine leaks)
// rather than hanging the caller forever.
func (p *Pipeline) RunContext(ctx context.Context) error {
	n := len(p.stages)
	queues := make([]*SPSC[any], n-1)
	for i := range queues {
		queues[i] = NewSPSC[any](p.queueCap, p.spinning)
	}
	p.registerQueueGauges(queues)
	var wg sync.WaitGroup
	for i, s := range p.stages {
		var in, out *SPSC[any]
		if i > 0 {
			in = queues[i-1]
		}
		if i < n-1 {
			out = queues[i]
		}
		s.start(p, p.newStageTelem(i), in, out, &wg)
	}
	done := make(chan struct{})
	go func() {
		wg.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-ctx.Done():
		p.fail(fmt.Errorf("ff: run canceled: %w", ctx.Err()))
		select {
		case <-done:
		case <-time.After(stuckGrace):
			return fmt.Errorf("ff: run canceled with stages still blocked: %w", ctx.Err())
		}
	}
	return p.firstErr()
}

// nodeStage runs a single Node on its own goroutine.
type nodeStage struct {
	node Node
}

func (ns *nodeStage) start(pl *Pipeline, tm *stageTelem, in, out *SPSC[any], wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		runNode(pl, tm, ns.node, in, out)
	}()
}

// svcSafe invokes n.Svc with panic containment. A panic or an error return
// value becomes a recorded node failure that cancels the stream; ok=false
// tells the caller to stop servicing this node (drain and propagate EOS).
func svcSafe(pl *Pipeline, n Node, task any, where string) (r any, ok bool) {
	defer func() {
		if pv := recover(); pv != nil {
			pl.fail(fmt.Errorf("ff: %s: panic: %v\n%s", where, pv, debug.Stack()))
			r, ok = nil, false
		}
	}()
	r = n.Svc(task)
	if err, isErr := r.(error); isErr {
		pl.fail(fmt.Errorf("ff: %s: %w", where, err))
		return nil, false
	}
	return r, true
}

// initSafe runs the node's Init (if any) with panic containment. It reports
// whether servicing may proceed.
func initSafe(pl *Pipeline, n Node, where string) (ok bool) {
	init, isInit := n.(Initializer)
	if !isInit {
		return true
	}
	defer func() {
		if pv := recover(); pv != nil {
			pl.fail(fmt.Errorf("ff: %s: init panic: %v\n%s", where, pv, debug.Stack()))
			ok = false
		}
	}()
	if err := init.Init(); err != nil {
		pl.fail(fmt.Errorf("ff: %s: init: %w", where, err))
		return false
	}
	return true
}

// endSafe runs the node's End (if any) with panic containment.
func endSafe(pl *Pipeline, n Node, where string) {
	fin, isFin := n.(Finalizer)
	if !isFin {
		return
	}
	defer func() {
		if pv := recover(); pv != nil {
			pl.fail(fmt.Errorf("ff: %s: end panic: %v\n%s", where, pv, debug.Stack()))
		}
	}()
	fin.End()
}

// runNode is the generic node service loop shared by pipeline stages and
// farm roles: init, consume/produce until EOS (or failure/cancellation),
// finalize, propagate EOS. tm (nil when telemetry is off) observes items
// in/out, service time, drops and errors.
func runNode(pl *Pipeline, tm *stageTelem, n Node, in, out *SPSC[any]) {
	where := fmt.Sprintf("node %T", n)
	send := func(v any) {
		if out != nil && !pl.Canceled() {
			out.Push(v)
			tm.itemOut()
		}
	}
	if on, ok := n.(OutNode); ok {
		on.setOut(send)
	}
	if !initSafe(pl, n, where) {
		tm.errored()
		if in != nil {
			tm.dropped(drain(in))
		}
		if out != nil {
			out.Push(EOS)
		}
		return
	}
	if in == nil {
		// Source: svc(nil) until EOS or the stream is aborted.
		for !pl.Canceled() {
			t0 := tm.svcStart()
			r, ok := svcSafe(pl, n, nil, where)
			tm.svcEnd(t0)
			if !ok {
				tm.errored()
			}
			if !ok || r == EOS {
				break
			}
			if r != GoOn {
				send(r)
			}
		}
	} else {
		// Drain the input in bursts: one head publish covers up to burstCap
		// items, and a stage that falls behind catches up without paying a
		// queue round-trip per item.
		var burst [burstCap]any
	serve:
		for {
			got := in.TryPopN(burst[:])
			if got == 0 {
				burst[0] = in.Pop()
				got = 1
			}
			for j := 0; j < got; j++ {
				t := burst[j]
				burst[j] = nil
				if t == EOS {
					break serve
				}
				if pl.Canceled() {
					// Keep consuming so upstream can finish, drop the items
					// (including the rest of this burst).
					tm.dropped(1 + drainBurst(in, burst[j+1:got]))
					break serve
				}
				tm.itemIn()
				t0 := tm.svcStart()
				r, ok := svcSafe(pl, n, t, where)
				tm.svcEnd(t0)
				if !ok || r == EOS {
					// Failure or early termination: keep consuming so
					// upstream can finish, but drop the items.
					if !ok {
						tm.errored()
					}
					tm.dropped(drainBurst(in, burst[j+1:got]))
					break serve
				}
				if r != GoOn {
					send(r)
				}
			}
		}
	}
	endSafe(pl, n, where)
	if out != nil {
		out.Push(EOS)
	}
}

// drain consumes and discards items until EOS, returning how many were
// discarded (the fault path's drop count).
func drain(in *SPSC[any]) int64 {
	var n int64
	for {
		if in.Pop() == EOS {
			return n
		}
		n++
	}
}

// drainBurst discards the unprocessed tail of a popped burst, then the rest
// of the queue, returning the total dropped. If the EOS was already popped
// into the burst the queue must not be touched again — nothing ever follows
// EOS, so a blind drain would block forever.
func drainBurst(in *SPSC[any], rest []any) int64 {
	var n int64
	for _, t := range rest {
		if t == EOS {
			return n
		}
		n++
	}
	return n + drain(in)
}
