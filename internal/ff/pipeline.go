package ff

import (
	"fmt"
	"sync"
)

// defaultQueueCap is the default bounded-queue capacity between nodes,
// matching FastFlow's default of 512 slots.
const defaultQueueCap = 512

// stage is anything that can occupy a pipeline position: a Node or a *Farm.
type stage interface {
	start(pl *Pipeline, in, out *SPSC[any], wg *sync.WaitGroup)
}

// Pipeline composes stages connected by SPSC queues, one thread per plain
// node (ff_pipeline). Stages are Nodes or *Farms.
type Pipeline struct {
	stages   []stage
	queueCap int
	spinning bool

	errMu sync.Mutex
	errs  []error
}

// NewPipeline builds a pipeline from stages. Each stage must be a Node, a
// *Farm, or a nested *Pipeline (FastFlow pipelines compose); anything else
// panics at construction (fail fast, as the FastFlow templates do at
// compile time).
func NewPipeline(stages ...any) *Pipeline {
	p := &Pipeline{queueCap: defaultQueueCap}
	for i, s := range stages {
		switch v := s.(type) {
		case *Farm:
			p.stages = append(p.stages, v)
		case *Pipeline:
			p.stages = append(p.stages, v)
		case Node:
			p.stages = append(p.stages, &nodeStage{node: v})
		default:
			panic(fmt.Sprintf("ff: pipeline stage %d is %T, want Node, *Farm or *Pipeline", i, s))
		}
	}
	if len(p.stages) == 0 {
		panic("ff: empty pipeline")
	}
	return p
}

// start wires this pipeline as a stage of an enclosing pipeline: its first
// stage consumes the outer input, its last feeds the outer output, and
// internal queues connect the rest. Errors propagate to the outer pipeline.
func (p *Pipeline) start(outer *Pipeline, in, out *SPSC[any], wg *sync.WaitGroup) {
	n := len(p.stages)
	queues := make([]*SPSC[any], n-1)
	cap := p.queueCap
	if cap == 0 {
		cap = outer.queueCap
	}
	for i := range queues {
		queues[i] = NewSPSC[any](cap, outer.spinning)
	}
	for i, s := range p.stages {
		sin, sout := in, out
		if i > 0 {
			sin = queues[i-1]
		}
		if i < n-1 {
			sout = queues[i]
		}
		s.start(outer, sin, sout, wg)
	}
}

// SetQueueCap sets the capacity of inter-stage queues (default 512).
func (p *Pipeline) SetQueueCap(n int) *Pipeline {
	if n < 2 {
		n = 2
	}
	p.queueCap = n
	return p
}

// SetSpinning selects non-blocking (busy-wait) queue mode; default is
// blocking mode.
func (p *Pipeline) SetSpinning(on bool) *Pipeline {
	p.spinning = on
	return p
}

// reportErr records a node failure; the first one is returned by Run.
func (p *Pipeline) reportErr(err error) {
	p.errMu.Lock()
	p.errs = append(p.errs, err)
	p.errMu.Unlock()
}

// Run starts every stage and blocks until the stream has fully drained
// (run_and_wait_end). It returns the first node error, if any.
func (p *Pipeline) Run() error {
	n := len(p.stages)
	queues := make([]*SPSC[any], n-1)
	for i := range queues {
		queues[i] = NewSPSC[any](p.queueCap, p.spinning)
	}
	var wg sync.WaitGroup
	for i, s := range p.stages {
		var in, out *SPSC[any]
		if i > 0 {
			in = queues[i-1]
		}
		if i < n-1 {
			out = queues[i]
		}
		s.start(p, in, out, &wg)
	}
	wg.Wait()
	p.errMu.Lock()
	defer p.errMu.Unlock()
	if len(p.errs) > 0 {
		return p.errs[0]
	}
	return nil
}

// nodeStage runs a single Node on its own goroutine.
type nodeStage struct {
	node Node
}

func (ns *nodeStage) start(pl *Pipeline, in, out *SPSC[any], wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		runNode(pl, ns.node, in, out)
	}()
}

// runNode is the generic node service loop shared by pipeline stages and
// farm roles: init, consume/produce until EOS, finalize, propagate EOS.
func runNode(pl *Pipeline, n Node, in, out *SPSC[any]) {
	send := func(v any) {
		if out != nil {
			out.Push(v)
		}
	}
	if on, ok := n.(OutNode); ok {
		on.setOut(send)
	}
	if init, ok := n.(Initializer); ok {
		if err := init.Init(); err != nil {
			pl.reportErr(fmt.Errorf("ff: init: %w", err))
			if in != nil {
				drain(in)
			}
			if out != nil {
				out.Push(EOS)
			}
			return
		}
	}
	if in == nil {
		// Source: svc(nil) until EOS.
		for {
			r := n.Svc(nil)
			if r == EOS {
				break
			}
			if r != GoOn {
				send(r)
			}
		}
	} else {
		for {
			t := in.Pop()
			if t == EOS {
				break
			}
			r := n.Svc(t)
			if r == EOS {
				// Early termination: keep consuming so upstream can
				// finish, but drop the items.
				drain(in)
				break
			}
			if r != GoOn {
				send(r)
			}
		}
	}
	if f, ok := n.(Finalizer); ok {
		f.End()
	}
	if out != nil {
		out.Push(EOS)
	}
}

// drain consumes and discards items until EOS.
func drain(in *SPSC[any]) {
	for {
		if in.Pop() == EOS {
			return
		}
	}
}
