package ff

import (
	"context"
	"fmt"
	"sync"
	"testing"
)

func TestMPMCCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ ask, want int }{
		{0, 2}, {1, 2}, {2, 2}, {3, 4}, {64, 64}, {65, 128},
	} {
		if got := NewMPMC[int](tc.ask, false).Cap(); got != tc.want {
			t.Errorf("NewMPMC(%d).Cap() = %d, want %d", tc.ask, got, tc.want)
		}
	}
}

func TestMPMCSingleThreadFIFO(t *testing.T) {
	q := NewMPMC[int](8, false)
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop on empty queue succeeded")
	}
	for i := 0; i < 8; i++ {
		if !q.TryPush(i) {
			t.Fatalf("TryPush(%d) failed below capacity", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("TryPush succeeded on full queue")
	}
	if q.Len() != 8 {
		t.Fatalf("Len() = %d, want 8", q.Len())
	}
	for i := 0; i < 8; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("TryPop = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("TryPop succeeded on drained queue")
	}
	// Wraparound: the generation stamps must keep working past one lap.
	for lap := 0; lap < 5; lap++ {
		for i := 0; i < 6; i++ {
			q.Push(lap*10 + i)
		}
		for i := 0; i < 6; i++ {
			if v, ok := q.TryPop(); !ok || v != lap*10+i {
				t.Fatalf("lap %d: TryPop = (%d, %v), want (%d, true)", lap, v, ok, lap*10+i)
			}
		}
	}
}

func TestMPMCBurstSingleThread(t *testing.T) {
	q := NewMPMC[int](8, false)
	vs := []int{1, 2, 3, 4, 5}
	if n := q.TryPushN(vs); n != 5 {
		t.Fatalf("TryPushN = %d, want 5", n)
	}
	// Only 3 slots left: a 5-burst must be truncated, not rejected.
	if n := q.TryPushN([]int{6, 7, 8, 9, 10}); n != 3 {
		t.Fatalf("TryPushN on nearly-full queue = %d, want 3", n)
	}
	if n := q.TryPushN([]int{99}); n != 0 {
		t.Fatalf("TryPushN on full queue = %d, want 0", n)
	}
	dst := make([]int, 6)
	if n := q.TryPopN(dst); n != 6 {
		t.Fatalf("TryPopN = %d, want 6", n)
	}
	for i, want := range []int{1, 2, 3, 4, 5, 6} {
		if dst[i] != want {
			t.Fatalf("TryPopN[%d] = %d, want %d", i, dst[i], want)
		}
	}
	if n := q.TryPopN(dst); n != 2 {
		t.Fatalf("TryPopN on tail = %d, want 2", n)
	}
	if dst[0] != 7 || dst[1] != 8 {
		t.Fatalf("tail burst = %v, want [7 8]", dst[:2])
	}
	if n := q.TryPopN(dst); n != 0 {
		t.Fatalf("TryPopN on empty queue = %d, want 0", n)
	}
	if n := q.TryPushN(nil); n != 0 {
		t.Fatalf("TryPushN(nil) = %d, want 0", n)
	}
	if n := q.TryPopN(nil); n != 0 {
		t.Fatalf("TryPopN(nil) = %d, want 0", n)
	}
}

// TestMPMCGrid is the linearizability hammer: every producers×consumers
// combination moves a tagged stream through one queue and checks (a)
// exactly-once delivery of every value, and (b) per-consumer streams from
// any single producer are strictly increasing — the FIFO property the
// Vyukov protocol guarantees (claims are ordered by ring position, and one
// producer's pushes take increasing positions). Run under -race in CI.
func TestMPMCGrid(t *testing.T) {
	perProducer := 2000
	if testing.Short() {
		perProducer = 500
	}
	for _, np := range []int{1, 2, 4} {
		for _, nc := range []int{1, 2, 4} {
			t.Run(fmt.Sprintf("p%dxc%d", np, nc), func(t *testing.T) {
				q := NewMPMC[uint64](64, false)
				var pwg, cwg sync.WaitGroup
				// Producers: half push singly, half in bursts, so both claim
				// paths run against each other.
				for p := 0; p < np; p++ {
					p := p
					pwg.Add(1)
					go func() {
						defer pwg.Done()
						if p%2 == 0 {
							for i := 0; i < perProducer; i++ {
								q.Push(uint64(p)<<32 | uint64(i))
							}
							return
						}
						buf := make([]uint64, 7)
						i := 0
						for i < perProducer {
							n := len(buf)
							if perProducer-i < n {
								n = perProducer - i
							}
							for j := 0; j < n; j++ {
								buf[j] = uint64(p)<<32 | uint64(i+j)
							}
							pushed := q.TryPushN(buf[:n])
							if pushed == 0 {
								var b backoff
								b.wait()
							}
							i += pushed
						}
					}()
				}
				got := make([][]uint64, nc)
				for c := 0; c < nc; c++ {
					c := c
					cwg.Add(1)
					go func() {
						defer cwg.Done()
						burst := make([]uint64, 5)
						for {
							// Alternate burst pops with blocking pops so both
							// consumer claim paths are exercised.
							if n := q.TryPopN(burst); n > 0 {
								got[c] = append(got[c], burst[:n]...)
								continue
							}
							v, ok := q.PopWait()
							if !ok {
								return
							}
							got[c] = append(got[c], v)
						}
					}()
				}
				pwg.Wait()
				q.Close()
				cwg.Wait()

				seen := make(map[uint64]int, np*perProducer)
				for c := 0; c < nc; c++ {
					last := make([]int64, np)
					for i := range last {
						last[i] = -1
					}
					for _, v := range got[c] {
						seen[v]++
						p, i := int(v>>32), int64(v&0xffffffff)
						if i <= last[p] {
							t.Fatalf("consumer %d: producer %d value %d arrived after %d (FIFO violation)", c, p, i, last[p])
						}
						last[p] = i
					}
				}
				if len(seen) != np*perProducer {
					t.Fatalf("received %d distinct values, want %d", len(seen), np*perProducer)
				}
				for v, n := range seen {
					if n != 1 {
						t.Fatalf("value %x delivered %d times, want exactly once", v, n)
					}
				}
			})
		}
	}
}

// TestMPMCCloseDrain checks PopWait delivers everything pushed before Close
// (including a push racing the close) before reporting end-of-stream, and
// that it reports end-of-stream promptly on an empty closed queue.
func TestMPMCCloseDrain(t *testing.T) {
	q := NewMPMC[int](16, false)
	for i := 0; i < 10; i++ {
		q.Push(i)
	}
	q.Close()
	if !q.Closed() {
		t.Fatal("Closed() = false after Close")
	}
	for i := 0; i < 10; i++ {
		v, ok := q.PopWait()
		if !ok || v != i {
			t.Fatalf("PopWait = (%d, %v), want (%d, true)", v, ok, i)
		}
	}
	if _, ok := q.PopWait(); ok {
		t.Fatal("PopWait succeeded on closed drained queue")
	}

	// Concurrent drain: consumers racing Close must between them still
	// deliver every element exactly once.
	q2 := NewMPMC[int](8, false)
	const total = 5000
	var cwg sync.WaitGroup
	counts := make([]int, 4)
	for c := 0; c < 4; c++ {
		c := c
		cwg.Add(1)
		go func() {
			defer cwg.Done()
			for {
				if _, ok := q2.PopWait(); !ok {
					return
				}
				counts[c]++
			}
		}()
	}
	for i := 0; i < total; i++ {
		q2.Push(i)
	}
	q2.Close()
	cwg.Wait()
	sum := 0
	for _, n := range counts {
		sum += n
	}
	if sum != total {
		t.Fatalf("drained %d elements, want %d", sum, total)
	}
}

func TestMPMCPushCtx(t *testing.T) {
	q := NewMPMC[int](2, false)
	if !q.PushCtx(context.Background(), 1) {
		t.Fatal("PushCtx failed with room available")
	}
	q.Push(2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if q.PushCtx(ctx, 3) {
		t.Fatal("PushCtx succeeded on full queue with canceled context")
	}
	// A consumer freeing a slot must unblock a waiting PushCtx.
	done := make(chan bool)
	go func() { done <- q.PushCtx(context.Background(), 4) }()
	if v, ok := q.TryPop(); !ok || v != 1 {
		t.Fatalf("TryPop = (%d, %v), want (1, true)", v, ok)
	}
	if !<-done {
		t.Fatal("PushCtx failed after space freed")
	}
}
