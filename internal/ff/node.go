package ff

// Control-flow sentinels, mirroring FastFlow's GO_ON and EOS tags. A node's
// Svc returns GoOn to emit nothing for this input, EOS to terminate the
// stream, or any other value to send it downstream (use SendOut for
// multiple outputs per input).
type signal int

var (
	// GoOn means "no output for this task, keep going" (FF_GO_ON).
	GoOn any = signal(1)
	// EOS terminates the stream (FF_EOS).
	EOS any = signal(2)
)

// Node is the FastFlow ff_node analogue: a stream transformer owning one
// thread of execution.
//
// For the first node of a pipeline (the source), Svc is called with a nil
// input until it returns EOS. For every other node, Svc is called once per
// input item; input never is nil.
type Node interface {
	// Svc processes one task. Return the output task, GoOn for no output,
	// or EOS to end the stream (sources end this way; middle nodes ending
	// early also propagate EOS downstream).
	//
	// Returning an error value marks the node as failed: the stream is
	// canceled, the remaining stages drain, and the error surfaces from
	// Run. A panic inside Svc is recovered and treated the same way, so a
	// broken stage never crashes the process.
	Svc(task any) any
}

// Initializer is implemented by nodes needing per-thread setup before the
// first Svc call (svc_init). Returning an error aborts the run.
type Initializer interface {
	Init() error
}

// Finalizer is implemented by nodes needing teardown after the last Svc
// call (svc_end).
type Finalizer interface {
	End()
}

// OutNode is implemented by nodes that emit multiple outputs per input via
// ff_send_out. Embed NodeBase to get the plumbing.
type OutNode interface {
	setOut(func(any))
}

// NodeBase provides SendOut, FastFlow's ff_send_out: emit an output
// immediately, possibly several times per Svc call. Embed it in node
// structs that need multi-output.
type NodeBase struct {
	out func(any)
}

// SendOut emits v downstream immediately.
func (b *NodeBase) SendOut(v any) {
	if b.out == nil {
		panic("ff: SendOut before the node was started")
	}
	b.out(v)
}

func (b *NodeBase) setOut(f func(any)) { b.out = f }

// F wraps a plain function as a middle/sink Node.
type F func(task any) any

// Svc implements Node.
func (f F) Svc(task any) any { return f(task) }

// sourceFunc adapts a generator function to a source Node: fn is called
// until it reports done.
type sourceFunc struct {
	fn func() (any, bool)
}

// Svc implements Node.
func (s sourceFunc) Svc(any) any {
	v, ok := s.fn()
	if !ok {
		return EOS
	}
	return v
}

// Source builds a source node from a generator: each call produces the next
// stream item; ok=false ends the stream.
func Source(fn func() (any, bool)) Node { return sourceFunc{fn} }

// SliceSource builds a source node that emits each element of items.
func SliceSource[T any](items []T) Node {
	i := 0
	return Source(func() (any, bool) {
		if i >= len(items) {
			return nil, false
		}
		v := items[i]
		i++
		return v, true
	})
}

// Sink builds a terminal node from a consumer function.
func Sink(fn func(task any)) Node {
	return F(func(task any) any {
		fn(task)
		return GoOn
	})
}
