package ff

import (
	"context"
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// failInit is a node whose Init always fails.
type failInit struct {
	err error
}

func (f failInit) Init() error      { return f.err }
func (f failInit) Svc(task any) any { return task }

func TestInitializerErrorAbortsRun(t *testing.T) {
	boom := errors.New("no device")
	var emitted atomic.Int64
	i := 0
	src := Source(func() (any, bool) {
		if i >= 1_000_000 {
			return nil, false
		}
		i++
		emitted.Add(1)
		return i, true
	})
	err := NewPipeline(src, failInit{err: boom}, Sink(func(any) {})).Run()
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want wrapped %v", err, boom)
	}
	if n := emitted.Load(); n >= 1_000_000 {
		t.Errorf("source ran to completion (%d items) despite init failure", n)
	}
}

func TestFarmWorkerInitErrorAborts(t *testing.T) {
	boom := errors.New("worker init failed")
	workers := []Node{failInit{err: boom}, F(func(task any) any { return task })}
	err := NewPipeline(SliceSource(seq(100)), NewFarm(workers), Sink(func(any) {})).Run()
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want wrapped %v", err, boom)
	}
}

func TestSvcPanicReported(t *testing.T) {
	i := 0
	src := Source(func() (any, bool) {
		i++
		return i, i <= 1_000_000
	})
	mid := F(func(task any) any {
		if task.(int) == 5 {
			panic("stage exploded")
		}
		return task
	})
	err := NewPipeline(src, mid, Sink(func(any) {})).Run()
	if err == nil || !strings.Contains(err.Error(), "stage exploded") {
		t.Fatalf("Run = %v, want panic error", err)
	}
}

func TestFarmWorkerPanicReported(t *testing.T) {
	for _, ordered := range []bool{false, true} {
		workers := make([]Node, 4)
		for w := range workers {
			workers[w] = F(func(task any) any {
				if task.(int) == 17 {
					panic("worker exploded")
				}
				return task
			})
		}
		var opts []FarmOpt
		if ordered {
			opts = append(opts, Ordered())
		}
		err := NewPipeline(SliceSource(seq(1000)), NewFarm(workers, opts...), Sink(func(any) {})).Run()
		if err == nil || !strings.Contains(err.Error(), "worker exploded") {
			t.Fatalf("ordered=%v: Run = %v, want panic error", ordered, err)
		}
	}
}

func TestSvcErrorValueCancelsStream(t *testing.T) {
	boom := errors.New("bad item")
	i := 0
	src := Source(func() (any, bool) {
		i++
		return i, i <= 1_000_000
	})
	mid := F(func(task any) any {
		if task.(int) == 3 {
			return boom
		}
		return task
	})
	err := NewPipeline(src, mid, Sink(func(any) {})).Run()
	if !errors.Is(err, boom) {
		t.Fatalf("Run = %v, want wrapped %v", err, boom)
	}
	if i >= 1_000_000 {
		t.Error("source was not canceled after the node failure")
	}
}

func TestFarmWorkerMidStreamEOSDrains(t *testing.T) {
	// One worker terminates the stream after a few items; the farm must
	// drain and complete without deadlock, with no error.
	var processed atomic.Int64
	workers := make([]Node, 3)
	for w := range workers {
		w := w
		n := 0
		workers[w] = F(func(task any) any {
			n++
			if w == 0 && n > 5 {
				return EOS
			}
			processed.Add(1)
			return task
		})
	}
	done := make(chan error, 1)
	go func() {
		done <- NewPipeline(SliceSource(seq(10000)), NewFarm(workers), Sink(func(any) {})).Run()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run = %v, want nil", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("farm deadlocked after mid-stream EOS from a worker")
	}
	if processed.Load() == 0 {
		t.Error("no items processed")
	}
}

func TestRunContextDeadlineOnStuckStage(t *testing.T) {
	block := make(chan struct{}) // closed only after the assertion: stuck while it matters
	defer close(block)           // let the abandoned pipeline drain so it doesn't outlive the test
	stuck := F(func(task any) any {
		<-block
		return task
	})
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := NewPipeline(SliceSource(seq(10)), stuck, Sink(func(any) {})).RunContext(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunContext = %v, want deadline exceeded", err)
	}
	if el := time.Since(start); el > 5*time.Second {
		t.Fatalf("RunContext took %v; the stuck stage hung the caller", el)
	}
}

func TestRunContextCancelMidStream(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var sunk atomic.Int64
	i := 0
	src := Source(func() (any, bool) {
		i++
		time.Sleep(time.Millisecond)
		return i, true // endless: only cancellation ends this stream
	})
	sink := Sink(func(any) {
		if sunk.Add(1) == 3 {
			cancel()
		}
	})
	err := NewPipeline(src, F(func(t any) any { return t }), sink).RunContext(ctx)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("RunContext = %v, want context.Canceled", err)
	}
}

func TestPipelineCancelStopsEndlessSource(t *testing.T) {
	var p *Pipeline
	var sunk atomic.Int64
	i := 0
	src := Source(func() (any, bool) {
		i++
		return i, true // endless
	})
	sink := Sink(func(any) {
		if sunk.Add(1) == 100 {
			p.Cancel()
		}
	})
	p = NewPipeline(src, sink)
	done := make(chan error, 1)
	go func() { done <- p.Run() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run = %v, want nil after plain Cancel", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Cancel did not stop the endless source")
	}
}

func TestNestedPipelinePanicReported(t *testing.T) {
	inner := NewPipeline(
		F(func(task any) any { return task.(int) * 2 }),
		F(func(task any) any {
			if task.(int) == 8 {
				panic("inner stage exploded")
			}
			return task
		}),
	)
	err := NewPipeline(SliceSource(seq(100)), inner, Sink(func(any) {})).Run()
	if err == nil || !strings.Contains(err.Error(), "inner stage exploded") {
		t.Fatalf("Run = %v, want inner panic error", err)
	}
}

// seq returns [1, 2, ..., n].
func seq(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i + 1
	}
	return s
}
