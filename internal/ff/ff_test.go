package ff

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

func TestSPSCBasic(t *testing.T) {
	q := NewSPSC[int](4, false)
	if q.Cap() != 4 {
		t.Errorf("Cap = %d, want 4", q.Cap())
	}
	for i := 0; i < 4; i++ {
		if !q.TryPush(i) {
			t.Fatalf("push %d failed", i)
		}
	}
	if q.TryPush(99) {
		t.Fatal("push to full queue should fail")
	}
	for i := 0; i < 4; i++ {
		v, ok := q.TryPop()
		if !ok || v != i {
			t.Fatalf("pop = %d,%v; want %d,true", v, ok, i)
		}
	}
	if _, ok := q.TryPop(); ok {
		t.Fatal("pop from empty queue should fail")
	}
}

func TestSPSCCapacityRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{{1, 2}, {2, 2}, {3, 4}, {5, 8}, {512, 512}, {513, 1024}} {
		if got := NewSPSC[int](tc.in, false).Cap(); got != tc.want {
			t.Errorf("NewSPSC(%d).Cap() = %d, want %d", tc.in, got, tc.want)
		}
	}
}

func TestSPSCConcurrentTransfer(t *testing.T) {
	const n = 100000
	q := NewSPSC[int](64, false)
	var sum int64
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 1; i <= n; i++ {
			q.Push(i)
		}
	}()
	go func() {
		defer wg.Done()
		prev := 0
		for i := 0; i < n; i++ {
			v := q.Pop()
			if v != prev+1 {
				t.Errorf("out of order: got %d after %d", v, prev)
				return
			}
			prev = v
			sum += int64(v)
		}
	}()
	wg.Wait()
	if want := int64(n) * (n + 1) / 2; sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

func TestSPSCSpinningMode(t *testing.T) {
	const n = 10000
	q := NewSPSC[int](8, true)
	var wg sync.WaitGroup
	wg.Add(2)
	got := 0
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Push(i)
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if q.Pop() == i {
				got++
			}
		}
	}()
	wg.Wait()
	if got != n {
		t.Errorf("received %d in-order items, want %d", got, n)
	}
}

func TestPipelineThreeStages(t *testing.T) {
	var out []int
	p := NewPipeline(
		SliceSource([]int{1, 2, 3, 4, 5}),
		F(func(task any) any { return task.(int) * 10 }),
		Sink(func(task any) { out = append(out, task.(int)) }),
	)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{10, 20, 30, 40, 50}
	if len(out) != len(want) {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestPipelineGoOnFilters(t *testing.T) {
	var out []int
	p := NewPipeline(
		SliceSource([]int{1, 2, 3, 4, 5, 6}),
		F(func(task any) any {
			if task.(int)%2 == 0 {
				return task
			}
			return GoOn
		}),
		Sink(func(task any) { out = append(out, task.(int)) }),
	)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(out) != 3 || out[0] != 2 || out[2] != 6 {
		t.Fatalf("out = %v, want evens", out)
	}
}

func TestPipelineEarlyEOS(t *testing.T) {
	var out []int
	p := NewPipeline(
		SliceSource(make([]int, 1000)), // plenty of input
		F(func(task any) any { return EOS }),
		Sink(func(task any) { out = append(out, task.(int)) }),
	)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Fatalf("early EOS should suppress all output, got %d items", len(out))
	}
}

// multiOut emits each input twice via SendOut.
type multiOut struct {
	NodeBase
}

func (m *multiOut) Svc(task any) any {
	m.SendOut(task)
	m.SendOut(task)
	return GoOn
}

func TestSendOutMultipleOutputs(t *testing.T) {
	var out []int
	p := NewPipeline(
		SliceSource([]int{1, 2, 3}),
		&multiOut{},
		Sink(func(task any) { out = append(out, task.(int)) }),
	)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{1, 1, 2, 2, 3, 3}
	if len(out) != len(want) {
		t.Fatalf("out = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

// initFail fails at svc_init.
type initFail struct{}

func (initFail) Svc(task any) any { return task }
func (initFail) Init() error      { return errors.New("boom") }

func TestInitErrorPropagates(t *testing.T) {
	p := NewPipeline(
		SliceSource([]int{1, 2, 3}),
		initFail{},
		Sink(func(any) {}),
	)
	if err := p.Run(); err == nil {
		t.Fatal("init failure should surface from Run")
	}
}

// lifecycle records Init/End calls.
type lifecycle struct {
	inits, ends atomic.Int32
}

func (l *lifecycle) Svc(task any) any { return task }
func (l *lifecycle) Init() error      { l.inits.Add(1); return nil }
func (l *lifecycle) End()             { l.ends.Add(1) }

func TestInitEndCalledOnce(t *testing.T) {
	lc := &lifecycle{}
	p := NewPipeline(SliceSource([]int{1}), lc, Sink(func(any) {}))
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if lc.inits.Load() != 1 || lc.ends.Load() != 1 {
		t.Errorf("inits=%d ends=%d, want 1,1", lc.inits.Load(), lc.ends.Load())
	}
}

func TestFarmUnorderedProcessesAll(t *testing.T) {
	const n = 500
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	var mu sync.Mutex
	seen := make(map[int]bool)
	workers := make([]Node, 4)
	for i := range workers {
		workers[i] = F(func(task any) any { return task.(int) + 1000 })
	}
	p := NewPipeline(
		SliceSource(items),
		NewFarm(workers),
		Sink(func(task any) {
			mu.Lock()
			seen[task.(int)] = true
			mu.Unlock()
		}),
	)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(seen) != n {
		t.Fatalf("saw %d results, want %d", len(seen), n)
	}
	for i := 0; i < n; i++ {
		if !seen[i+1000] {
			t.Fatalf("missing result for input %d", i)
		}
	}
}

func TestFarmOrderedPreservesOrder(t *testing.T) {
	const n = 300
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	workers := make([]Node, 5)
	for i := range workers {
		workers[i] = F(func(task any) any { return task })
	}
	var out []int
	p := NewPipeline(
		SliceSource(items),
		NewFarm(workers, Ordered()),
		Sink(func(task any) { out = append(out, task.(int)) }),
	)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(out) != n {
		t.Fatalf("got %d, want %d", len(out), n)
	}
	for i, v := range out {
		if v != i {
			t.Fatalf("out[%d] = %d: ordered farm violated order", i, v)
		}
	}
}

func TestFarmOrderedWithGoOn(t *testing.T) {
	// Workers dropping items (GoOn) must not stall the reorder buffer.
	const n = 100
	items := make([]int, n)
	for i := range items {
		items[i] = i
	}
	workers := make([]Node, 3)
	for i := range workers {
		workers[i] = F(func(task any) any {
			if task.(int)%3 == 0 {
				return GoOn
			}
			return task
		})
	}
	var out []int
	p := NewPipeline(
		SliceSource(items),
		NewFarm(workers, Ordered()),
		Sink(func(task any) { out = append(out, task.(int)) }),
	)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	prev := -1
	count := 0
	for _, v := range out {
		if v%3 == 0 {
			t.Fatalf("dropped item %d leaked through", v)
		}
		if v <= prev {
			t.Fatalf("order violated: %d after %d", v, prev)
		}
		prev = v
		count++
	}
	if want := n - (n+2)/3; count != want {
		t.Fatalf("got %d items, want %d", count, want)
	}
}

func TestFarmOnDemandBalancesSkew(t *testing.T) {
	// One poison-slow worker; on-demand scheduling should route most work
	// to the others while round-robin would assign it 1/4 of all tasks.
	const n = 400
	items := make([]int, n)
	var slowCount atomic.Int32
	workers := make([]Node, 4)
	for i := range workers {
		i := i
		workers[i] = F(func(task any) any {
			if i == 0 {
				slowCount.Add(1)
				time.Sleep(2 * time.Millisecond)
			}
			return task
		})
	}
	p := NewPipeline(
		SliceSource(items),
		NewFarm(workers, OnDemand()),
		Sink(func(any) {}),
	).SetQueueCap(2)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if got := slowCount.Load(); got >= n/4 {
		t.Errorf("slow worker got %d of %d tasks; on-demand should starve it below the round-robin share %d", got, n, n/4)
	}
}

// emitterSource generates k items from inside a farm emitter (farm as
// pipeline source).
type emitterSource struct {
	k, i int
}

func (e *emitterSource) Svc(any) any {
	if e.i >= e.k {
		return EOS
	}
	e.i++
	return e.i
}

func TestFarmAsSource(t *testing.T) {
	workers := make([]Node, 3)
	for i := range workers {
		workers[i] = F(func(task any) any { return task.(int) * 2 })
	}
	var sum int
	var mu sync.Mutex
	p := NewPipeline(
		NewFarm(workers, WithEmitter(&emitterSource{k: 50})),
		Sink(func(task any) {
			mu.Lock()
			sum += task.(int)
			mu.Unlock()
		}),
	)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if want := 50 * 51; sum != want {
		t.Errorf("sum = %d, want %d", sum, want)
	}
}

func TestFarmWithCollector(t *testing.T) {
	workers := make([]Node, 2)
	for i := range workers {
		workers[i] = F(func(task any) any { return task })
	}
	var n atomic.Int32
	col := F(func(task any) any {
		n.Add(1)
		return task
	})
	var out int
	p := NewPipeline(
		SliceSource([]int{1, 2, 3, 4}),
		NewFarm(workers, WithCollector(col)),
		Sink(func(any) { out++ }),
	)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 4 || out != 4 {
		t.Errorf("collector saw %d, sink saw %d; want 4,4", n.Load(), out)
	}
}

func TestFarmAsLastStage(t *testing.T) {
	var n atomic.Int32
	workers := make([]Node, 3)
	for i := range workers {
		workers[i] = F(func(task any) any {
			n.Add(1)
			return GoOn
		})
	}
	p := NewPipeline(SliceSource(make([]int, 42)), NewFarm(workers))
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if n.Load() != 42 {
		t.Errorf("workers processed %d, want 42", n.Load())
	}
}

func TestPipelineInvalidStagePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("non-Node stage should panic")
		}
	}()
	NewPipeline("not a node")
}

func TestEmptyPipelinePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("empty pipeline should panic")
		}
	}()
	NewPipeline()
}

func TestFarmNoWorkersPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("farm with no workers should panic")
		}
	}()
	NewFarm(nil)
}

// Property: an ordered farm is an identity transformation on any input
// slice, for any worker count and queue capacity.
func TestOrderedFarmIdentityProperty(t *testing.T) {
	f := func(vals []int32, wSeed, qSeed uint8) bool {
		nw := int(wSeed)%6 + 1
		qc := int(qSeed)%30 + 2
		workers := make([]Node, nw)
		for i := range workers {
			workers[i] = F(func(task any) any { return task })
		}
		var out []int32
		p := NewPipeline(
			SliceSource(vals),
			NewFarm(workers, Ordered()),
			Sink(func(task any) { out = append(out, task.(int32)) }),
		).SetQueueCap(qc)
		if err := p.Run(); err != nil {
			return false
		}
		if len(out) != len(vals) {
			return false
		}
		for i := range vals {
			if out[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func BenchmarkPipelineItemThroughput(b *testing.B) {
	n := b.N
	i := 0
	p := NewPipeline(
		Source(func() (any, bool) {
			if i >= n {
				return nil, false
			}
			i++
			return i, true
		}),
		F(func(task any) any { return task }),
		Sink(func(any) {}),
	)
	b.ResetTimer()
	if err := p.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkFarm4Workers(b *testing.B) {
	n := b.N
	i := 0
	workers := make([]Node, 4)
	for w := range workers {
		workers[w] = F(func(task any) any { return task })
	}
	p := NewPipeline(
		Source(func() (any, bool) {
			if i >= n {
				return nil, false
			}
			i++
			return i, true
		}),
		NewFarm(workers),
		Sink(func(any) {}),
	)
	b.ResetTimer()
	if err := p.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkSPSCPingPong(b *testing.B) {
	q := NewSPSC[int](512, true)
	done := make(chan struct{})
	go func() {
		for i := 0; i < b.N; i++ {
			q.Pop()
		}
		close(done)
	}()
	for i := 0; i < b.N; i++ {
		q.Push(i)
	}
	<-done
}

func TestNestedPipeline(t *testing.T) {
	// pipe( source, pipe( +1, *2 ), sink ) — FastFlow pipelines compose.
	inner := NewPipeline(
		F(func(task any) any { return task.(int) + 1 }),
		F(func(task any) any { return task.(int) * 2 }),
	)
	var out []int
	outer := NewPipeline(
		SliceSource([]int{1, 2, 3}),
		inner,
		Sink(func(task any) { out = append(out, task.(int)) }),
	)
	if err := outer.Run(); err != nil {
		t.Fatal(err)
	}
	want := []int{4, 6, 8}
	if len(out) != 3 {
		t.Fatalf("out = %v", out)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("out = %v, want %v", out, want)
		}
	}
}

func TestNestedPipelineWithFarm(t *testing.T) {
	// A nested pipeline containing a farm, composed inside an outer
	// pipeline.
	workers := make([]Node, 3)
	for i := range workers {
		workers[i] = F(func(task any) any { return task.(int) * 10 })
	}
	inner := NewPipeline(
		F(func(task any) any { return task.(int) + 1 }),
		NewFarm(workers, Ordered()),
	)
	var out []int
	outer := NewPipeline(
		SliceSource([]int{0, 1, 2, 3, 4}),
		inner,
		Sink(func(task any) { out = append(out, task.(int)) }),
	)
	if err := outer.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != (i+1)*10 {
			t.Fatalf("out[%d] = %d, want %d", i, v, (i+1)*10)
		}
	}
}

func TestNestedPipelineAsSource(t *testing.T) {
	// A nested pipeline whose first stage is a source.
	var out []int
	inner := NewPipeline(
		SliceSource([]int{5, 6}),
		F(func(task any) any { return task.(int) * 3 }),
	)
	outer := NewPipeline(inner, Sink(func(task any) { out = append(out, task.(int)) }))
	if err := outer.Run(); err != nil {
		t.Fatal(err)
	}
	if len(out) != 2 || out[0] != 15 || out[1] != 18 {
		t.Fatalf("out = %v", out)
	}
}
