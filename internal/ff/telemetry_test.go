package ff

import (
	"strings"
	"testing"

	"streamgpu/internal/telemetry"
)

// TestPipelineTelemetry runs an instrumented source -> farm -> sink pipeline
// and checks the counters, histograms, queue gauges and per-item trace agree
// with the stream.
func TestPipelineTelemetry(t *testing.T) {
	const n = 50
	reg := telemetry.New()
	tr := telemetry.NewStreamTracer(4 * n)

	var got []int
	sink := Sink(func(v any) { got = append(got, v.(int)) })
	double := F(func(v any) any { return v.(int) * 2 })
	p := NewPipeline(
		SliceSource(seq(n)),
		NewFarm([]Node{double, double, double}, Ordered()),
		sink,
	)
	p.SetTelemetry(reg, "test", "source", "double", "sink")
	p.SetStreamTracer(tr)
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != n {
		t.Fatalf("sink saw %d items, want %d", len(got), n)
	}

	lblFarm := telemetry.Labels{"pipeline": "test", "stage": "double"}
	if v := reg.Counter("ff_stage_items_in_total", lblFarm).Value(); v != n {
		t.Errorf("farm items in = %d, want %d", v, n)
	}
	if v := reg.Counter("ff_stage_items_out_total", lblFarm).Value(); v != n {
		t.Errorf("farm items out = %d, want %d", v, n)
	}
	if v := reg.Counter("ff_stage_dropped_total", lblFarm).Value(); v != 0 {
		t.Errorf("farm drops = %d, want 0", v)
	}
	if v := reg.Histogram("ff_stage_service_seconds", nil, lblFarm).Count(); v != n {
		t.Errorf("farm svc observations = %d, want %d", v, n)
	}
	lblSink := telemetry.Labels{"pipeline": "test", "stage": "sink"}
	if v := reg.Counter("ff_stage_items_in_total", lblSink).Value(); v != n {
		t.Errorf("sink items in = %d, want %d", v, n)
	}

	// Queue gauges exist for both inter-stage queues and the farm internals.
	var b strings.Builder
	if err := reg.WriteProm(&b); err != nil {
		t.Fatal(err)
	}
	expo := b.String()
	for _, want := range []string{
		`ff_queue_depth{pipeline="test",queue="source->double"}`,
		`ff_queue_depth{pipeline="test",queue="double->sink"}`,
		`ff_farm_queue_depth{pipeline="test",queue="w0",stage="double"}`,
		`ff_farm_queue_depth{pipeline="test",queue="c",stage="double"}`,
	} {
		if !strings.Contains(expo, want) {
			t.Errorf("exposition missing %s", want)
		}
	}

	// Per-item trace: n visits to the farm stage.
	visits := 0
	for _, ev := range tr.Events() {
		if ev.Stage == "double" {
			visits++
			if ev.Exit.Before(ev.Enter) {
				t.Fatalf("item %d exits before entering", ev.Item)
			}
		}
	}
	if visits != n {
		t.Errorf("trace has %d farm visits, want %d", visits, n)
	}
}

// TestPipelineTelemetryDrops cancels mid-stream and checks dropped items are
// accounted for: every emitted item is either delivered or counted dropped.
func TestPipelineTelemetryDrops(t *testing.T) {
	reg := telemetry.New()
	emitted := 0
	var p *Pipeline
	src := Source(func() (any, bool) {
		if emitted >= 100 {
			return nil, false
		}
		emitted++
		if emitted == 10 {
			p.Cancel()
		}
		return emitted, true
	})
	delivered := 0
	p = NewPipeline(src, F(func(v any) any { return v }), Sink(func(any) { delivered++ }))
	p.SetTelemetry(reg, "drops")
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
	var droppedTotal int64
	for _, name := range []string{"s1", "s2"} {
		droppedTotal += reg.Counter("ff_stage_dropped_total",
			telemetry.Labels{"pipeline": "drops", "stage": name}).Value()
	}
	if int64(delivered)+droppedTotal < int64(emitted)-1 {
		t.Errorf("emitted %d, delivered %d, dropped %d: items unaccounted for",
			emitted, delivered, droppedTotal)
	}
}

// TestPipelineNoTelemetry pins the zero-cost-when-off contract: an
// uninstrumented pipeline must run with nil stage telems.
func TestPipelineNoTelemetry(t *testing.T) {
	p := NewPipeline(SliceSource(seq(5)), Sink(func(any) {}))
	if tm := p.newStageTelem(0); tm != nil {
		t.Fatal("uninstrumented pipeline built a stage telem")
	}
	if err := p.Run(); err != nil {
		t.Fatal(err)
	}
}
