package ff

import (
	"fmt"
	"sync/atomic"
	"time"

	"streamgpu/internal/telemetry"
)

// pipeTelem is a pipeline's observability configuration: a metrics registry,
// a pipeline name for labels, optional per-stage names, and an optional
// per-item stream tracer. All of it is optional; a pipeline without telemetry
// pays one nil check per event.
type pipeTelem struct {
	reg        *telemetry.Registry
	name       string
	stageNames []string
	tracer     *telemetry.StreamTracer
}

// stageName labels stage i; unnamed stages get positional names.
func (t *pipeTelem) stageName(i int) string {
	if i < len(t.stageNames) && t.stageNames[i] != "" {
		return t.stageNames[i]
	}
	return fmt.Sprintf("s%d", i)
}

// SetTelemetry attaches a metrics registry to the pipeline. name labels every
// metric ({pipeline=name}); stageNames (optional, positional) label the
// stages, defaulting to s0, s1, ... Metrics emitted per stage:
//
//	ff_stage_items_in_total     items entering the stage (farm: scheduled)
//	ff_stage_items_out_total    items the stage forwarded downstream
//	ff_stage_dropped_total      items discarded by cancellation or failure
//	ff_stage_errors_total       svc errors and panics
//	ff_stage_service_seconds    svc wall-time histogram
//	ff_queue_depth              inter-stage queue occupancy (gauge)
//	ff_farm_queue_depth         farm-internal worker/collector queues (gauge)
//
// Queue gauges are (re)registered on each Run, so a re-run pipeline re-points
// them at its fresh queues.
func (p *Pipeline) SetTelemetry(reg *telemetry.Registry, name string, stageNames ...string) *Pipeline {
	if p.tel == nil {
		p.tel = &pipeTelem{}
	}
	p.tel.reg = reg
	p.tel.name = name
	p.tel.stageNames = stageNames
	return p
}

// SetStreamTracer attaches a per-item tracer: every stage records item
// enter/exit timestamps into tr. Item ids are per-stage completion sequence
// numbers.
func (p *Pipeline) SetStreamTracer(tr *telemetry.StreamTracer) *Pipeline {
	if p.tel == nil {
		p.tel = &pipeTelem{}
	}
	p.tel.tracer = tr
	return p
}

// stageTelem is one stage's instruments. A nil *stageTelem (telemetry off)
// no-ops everywhere, so the service loops carry no conditionals beyond the
// receiver check.
type stageTelem struct {
	reg    *telemetry.Registry
	pipe   string
	name   string
	tracer *telemetry.StreamTracer
	seq    atomic.Int64

	in, out, drops, errs *telemetry.Counter
	svc                  *telemetry.Histogram
}

// newStageTelem builds stage i's instruments, or nil when telemetry is off.
func (p *Pipeline) newStageTelem(i int) *stageTelem {
	t := p.tel
	if t == nil || (t.reg == nil && t.tracer == nil) {
		return nil
	}
	name := t.stageName(i)
	lbl := telemetry.Labels{"pipeline": t.name, "stage": name}
	return &stageTelem{
		reg:    t.reg,
		pipe:   t.name,
		name:   name,
		tracer: t.tracer,
		in:     t.reg.Counter("ff_stage_items_in_total", lbl),
		out:    t.reg.Counter("ff_stage_items_out_total", lbl),
		drops:  t.reg.Counter("ff_stage_dropped_total", lbl),
		errs:   t.reg.Counter("ff_stage_errors_total", lbl),
		svc:    t.reg.Histogram("ff_stage_service_seconds", nil, lbl),
	}
}

// registerQueueGauges points ff_queue_depth at this run's inter-stage queues.
func (p *Pipeline) registerQueueGauges(queues []*SPSC[any]) {
	t := p.tel
	if t == nil || t.reg == nil {
		return
	}
	for i, q := range queues {
		q := q
		t.reg.GaugeFunc("ff_queue_depth",
			telemetry.Labels{"pipeline": t.name, "queue": t.stageName(i) + "->" + t.stageName(i+1)},
			func() float64 { return float64(q.Len()) })
	}
}

// registerFarmQueueGauges points ff_farm_queue_depth at a farm's internal
// emitter->worker (w<i>) queues and the shared worker->collector MPMC
// fan-in queue (c).
func (tm *stageTelem) registerFarmQueueGauges(wqs []*SPSC[any], cq *MPMC[any]) {
	if tm == nil || tm.reg == nil {
		return
	}
	for i := range wqs {
		wq := wqs[i]
		tm.reg.GaugeFunc("ff_farm_queue_depth",
			telemetry.Labels{"pipeline": tm.pipe, "stage": tm.name, "queue": fmt.Sprintf("w%d", i)},
			func() float64 { return float64(wq.Len()) })
	}
	tm.reg.GaugeFunc("ff_farm_queue_depth",
		telemetry.Labels{"pipeline": tm.pipe, "stage": tm.name, "queue": "c"},
		func() float64 { return float64(cq.Len()) })
}

func (tm *stageTelem) itemIn() {
	if tm == nil {
		return
	}
	tm.in.Inc()
}

func (tm *stageTelem) itemOut() {
	if tm == nil {
		return
	}
	tm.out.Inc()
}

func (tm *stageTelem) dropped(n int64) {
	if tm == nil || n <= 0 {
		return
	}
	tm.drops.Add(n)
}

func (tm *stageTelem) errored() {
	if tm == nil {
		return
	}
	tm.errs.Inc()
}

// svcStart stamps the beginning of one service call; the zero time means
// telemetry is off (time.Now is only paid when a stage is instrumented).
func (tm *stageTelem) svcStart() time.Time {
	if tm == nil {
		return time.Time{}
	}
	return time.Now()
}

// svcEnd records the service time and, when tracing, the item's stage visit.
func (tm *stageTelem) svcEnd(start time.Time) {
	if tm == nil {
		return
	}
	end := time.Now()
	tm.svc.ObserveDuration(end.Sub(start))
	if tm.tracer != nil {
		tm.tracer.Observe(tm.seq.Add(1)-1, tm.name, start, end)
	}
}
