package ff

import (
	"context"
	"sync/atomic"
)

// mpmcSlot is one cell of the MPMC ring. seq is the slot's generation
// stamp — the Vyukov bounded-queue protocol: a slot at ring position p is
// ready for a producer when seq == p and ready for a consumer when
// seq == p+1; claiming an operation bumps the stamp past the position so the
// other side (and the next generation) can tell the slot's state without
// locks. The atomic stamp publication is also the happens-before edge that
// makes the plain val accesses race-free: a consumer only reads val after
// loading the seq value the producer stored after writing it.
type mpmcSlot[T any] struct {
	seq atomic.Uint64
	val T
}

// MPMC is a bounded lock-free multi-producer/multi-consumer ring queue —
// the fan-in primitive that lets N farm workers feed one collector (and N
// session readers feed one dispatcher) without per-producer SPSC queues to
// poll. Any number of goroutines may call the producer methods
// (TryPush/TryPushN/Push/PushCtx) and any number the consumer methods
// (TryPop/TryPopN/PopWait) concurrently.
//
// Close is a producer-side end-of-stream signal for PopWait; it does not
// fence out late pushes — callers stop their producers first, as the
// server's drain path does.
type MPMC[T any] struct {
	buf    []mpmcSlot[T]
	mask   uint64
	_      cacheLinePad
	head   atomic.Uint64 // next ring position to pop
	_      cacheLinePad
	tail   atomic.Uint64 // next ring position to push
	_      cacheLinePad
	closed atomic.Bool
	spin   bool
}

// NewMPMC creates a queue with capacity rounded up to a power of two
// (minimum 2). spinning selects busy-wait backoff for the blocking helpers,
// as for SPSC.
func NewMPMC[T any](capacity int, spinning bool) *MPMC[T] {
	if capacity < 2 {
		capacity = 2
	}
	c := 1
	for c < capacity {
		c <<= 1
	}
	q := &MPMC[T]{buf: make([]mpmcSlot[T], c), mask: uint64(c - 1), spin: spinning}
	for i := range q.buf {
		q.buf[i].seq.Store(uint64(i))
	}
	return q
}

// Cap reports the queue capacity.
func (q *MPMC[T]) Cap() int { return len(q.buf) }

// Len reports an instantaneous element count (approximate under
// concurrency).
func (q *MPMC[T]) Len() int {
	d := q.tail.Load() - q.head.Load()
	if int64(d) < 0 {
		return 0
	}
	return int(d)
}

// TryPush appends v if there is room.
func (q *MPMC[T]) TryPush(v T) bool {
	for {
		t := q.tail.Load()
		s := &q.buf[t&q.mask]
		seq := s.seq.Load()
		if seq == t {
			if q.tail.CompareAndSwap(t, t+1) {
				s.val = v
				s.seq.Store(t + 1)
				return true
			}
			continue // lost the claim; reload tail
		}
		if seq < t {
			return false // slot still holds the previous generation: full
		}
		// seq > t: another producer advanced tail past our snapshot; retry.
	}
}

// TryPop removes the oldest element if present.
func (q *MPMC[T]) TryPop() (v T, ok bool) {
	for {
		h := q.head.Load()
		s := &q.buf[h&q.mask]
		seq := s.seq.Load()
		if seq == h+1 {
			if q.head.CompareAndSwap(h, h+1) {
				v = s.val
				var zero T
				s.val = zero // release the reference for GC
				s.seq.Store(h + uint64(len(q.buf)))
				return v, true
			}
			continue
		}
		if seq < h+1 {
			return v, false // slot not yet published: empty
		}
		// seq > h+1: another consumer advanced head; retry.
	}
}

// TryPushN appends up to len(vs) elements and reports how many were
// enqueued. The burst is claimed with a single tail CAS: the producer scans
// the contiguous run of push-ready slots from its tail snapshot, claims the
// whole run at once, then fills and publishes each slot. Slots observed
// ready cannot change state before the claim — only a producer that wins
// the tail CAS may touch them, and the claim CAS fails if any other
// producer moved first — so the scan never claims a slot it did not see
// free.
func (q *MPMC[T]) TryPushN(vs []T) int {
	n := uint64(len(vs))
	if n == 0 {
		return 0
	}
	for {
		t := q.tail.Load()
		c := uint64(0)
		for c < n && q.buf[(t+c)&q.mask].seq.Load() == t+c {
			c++
		}
		if c == 0 {
			if q.buf[t&q.mask].seq.Load() < t {
				return 0 // full
			}
			continue // stale tail snapshot; retry
		}
		if q.tail.CompareAndSwap(t, t+c) {
			for i := uint64(0); i < c; i++ {
				s := &q.buf[(t+i)&q.mask]
				s.val = vs[i]
				s.seq.Store(t + i + 1)
			}
			return int(c)
		}
	}
}

// TryPopN removes up to len(dst) of the oldest elements into dst and
// reports how many were transferred, claiming the burst with a single head
// CAS (the consumer-side mirror of TryPushN).
func (q *MPMC[T]) TryPopN(dst []T) int {
	n := uint64(len(dst))
	if n == 0 {
		return 0
	}
	for {
		h := q.head.Load()
		c := uint64(0)
		for c < n && q.buf[(h+c)&q.mask].seq.Load() == h+c+1 {
			c++
		}
		if c == 0 {
			if q.buf[h&q.mask].seq.Load() < h+1 {
				return 0 // empty (or the head slot is mid-publish)
			}
			continue // stale head snapshot; retry
		}
		if q.head.CompareAndSwap(h, h+c) {
			var zero T
			for i := uint64(0); i < c; i++ {
				s := &q.buf[(h+i)&q.mask]
				dst[i] = s.val
				s.val = zero // release the reference for GC
				s.seq.Store(h + i + uint64(len(q.buf)))
			}
			return int(c)
		}
	}
}

// Push blocks (with backoff) until v is enqueued.
func (q *MPMC[T]) Push(v T) {
	var b backoff
	b.spin = q.spin
	for !q.TryPush(v) {
		b.wait()
	}
}

// PushCtx blocks until v is enqueued or ctx is done, reporting whether the
// push happened. This is the bounded-admission producer call: a full queue
// exerts backpressure through the backoff ramp, and cancellation (drain,
// disconnect) unblocks the producer without leaking the item into the
// stream.
func (q *MPMC[T]) PushCtx(ctx context.Context, v T) bool {
	var b backoff
	b.spin = q.spin
	for {
		if q.TryPush(v) {
			return true
		}
		if ctx.Err() != nil {
			return false
		}
		b.wait()
	}
}

// Close marks the stream ended for PopWait. It does not prevent further
// pushes; callers must stop their producers first (elements pushed before
// Close remain poppable — PopWait drains the queue before reporting end).
func (q *MPMC[T]) Close() { q.closed.Store(true) }

// Closed reports whether Close has been called.
func (q *MPMC[T]) Closed() bool { return q.closed.Load() }

// PopWait blocks until an element is available (returning it with true) or
// the queue is closed and drained (returning the zero value and false).
func (q *MPMC[T]) PopWait() (T, bool) {
	var b backoff
	b.spin = q.spin
	for {
		if v, ok := q.TryPop(); ok {
			return v, true
		}
		if q.closed.Load() {
			// Re-check after observing closed: a push that raced with Close
			// must still be drained, not dropped.
			if v, ok := q.TryPop(); ok {
				return v, true
			}
			var zero T
			return zero, false
		}
		b.wait()
	}
}
