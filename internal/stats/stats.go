// Package stats provides the small statistics and rendering helpers the
// experiment harness uses: mean/stddev over repeated samples (the paper
// reports arithmetic means and standard deviations over 10 samples) and
// fixed-width table / ASCII bar rendering for regenerating the figures on a
// terminal.
package stats

import (
	"fmt"
	"math"
	"strings"
)

// Sample accumulates observations.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation (+Inf for an empty sample).
func (s *Sample) Min() float64 {
	min := math.Inf(1)
	for _, x := range s.xs {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest observation (-Inf for an empty sample).
func (s *Sample) Max() float64 {
	max := math.Inf(-1)
	for _, x := range s.xs {
		if x > max {
			max = x
		}
	}
	return max
}

// Row is one labelled measurement of a figure: a time (or throughput) plus
// the derived speedup column.
type Row struct {
	Label   string
	Value   float64 // seconds or MB/s, per the figure's unit
	Speedup float64 // vs the figure's baseline (0 = not applicable)
	Stddev  float64
}

// Table renders rows in the fixed-width layout cmd/figures prints.
type Table struct {
	Title string
	Unit  string // "s" (execution time) or "MB/s" (throughput)
	Rows  []Row
}

// Add appends a row.
func (t *Table) Add(r Row) { t.Rows = append(t.Rows, r) }

// String renders the table with an ASCII bar per row, scaled to the
// largest value.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("=", len(t.Title)))
	max := 0.0
	labelW := 10
	for _, r := range t.Rows {
		if r.Value > max {
			max = r.Value
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	for _, r := range t.Rows {
		bar := ""
		if max > 0 {
			n := int(r.Value / max * 40)
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(&b, "%-*s  %12.3f %-5s", labelW, r.Label, r.Value, t.Unit)
		if r.Speedup > 0 {
			fmt.Fprintf(&b, " %8.1fx", r.Speedup)
		} else {
			fmt.Fprintf(&b, " %9s", "")
		}
		if r.Stddev > 0 {
			fmt.Fprintf(&b, " ±%.3f", r.Stddev)
		}
		fmt.Fprintf(&b, "  %s\n", bar)
	}
	return b.String()
}

// Find returns the row with the given label, if present.
func (t *Table) Find(label string) (Row, bool) {
	for _, r := range t.Rows {
		if r.Label == label {
			return r, true
		}
	}
	return Row{}, false
}
