// Package stats provides the small statistics and rendering helpers the
// experiment harness uses: mean/stddev over repeated samples (the paper
// reports arithmetic means and standard deviations over 10 samples) and
// fixed-width table / ASCII bar rendering for regenerating the figures on a
// terminal.
package stats

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
)

// Sample accumulates observations.
type Sample struct {
	xs []float64
}

// Add appends an observation.
func (s *Sample) Add(x float64) { s.xs = append(s.xs, x) }

// N reports the number of observations.
func (s *Sample) N() int { return len(s.xs) }

// Mean returns the arithmetic mean (0 for an empty sample).
func (s *Sample) Mean() float64 {
	if len(s.xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range s.xs {
		sum += x
	}
	return sum / float64(len(s.xs))
}

// StdDev returns the sample standard deviation (0 for n < 2).
func (s *Sample) StdDev() float64 {
	n := len(s.xs)
	if n < 2 {
		return 0
	}
	m := s.Mean()
	var ss float64
	for _, x := range s.xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Min returns the smallest observation (+Inf for an empty sample).
func (s *Sample) Min() float64 {
	min := math.Inf(1)
	for _, x := range s.xs {
		if x < min {
			min = x
		}
	}
	return min
}

// Max returns the largest observation (-Inf for an empty sample).
func (s *Sample) Max() float64 {
	max := math.Inf(-1)
	for _, x := range s.xs {
		if x > max {
			max = x
		}
	}
	return max
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs by linear
// interpolation between order statistics (the "exclusive" method is not
// needed at our sample sizes). It copies and sorts; xs is left untouched.
// An empty input yields 0.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(rank)
	frac := rank - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo])
}

// Percentile returns the p-th percentile of the sample's observations.
func (s *Sample) Percentile(p float64) float64 { return Percentile(s.xs, p) }

// Histogram is a fixed-bucket histogram: Bounds are ascending upper bounds,
// with an implicit +Inf bucket at the end (Counts has one more element than
// Bounds). It is the bucket arithmetic shared by the telemetry registry and
// the bench harness; it is not safe for concurrent use — telemetry wraps it
// with atomics.
type Histogram struct {
	Bounds []float64
	Counts []int64
	Sum    float64
	Count  int64
}

// NewHistogram builds a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...float64) *Histogram {
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("stats: histogram bounds not ascending: %v", bounds))
		}
	}
	return &Histogram{Bounds: bounds, Counts: make([]int64, len(bounds)+1)}
}

// BucketIndex returns the index of the bucket v falls in (the first bound
// >= v, or the +Inf bucket).
func (h *Histogram) BucketIndex(v float64) int {
	for i, b := range h.Bounds {
		if v <= b {
			return i
		}
	}
	return len(h.Bounds)
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.Counts[h.BucketIndex(v)]++
	h.Sum += v
	h.Count++
}

// Mean returns the mean of the observed values (0 when empty).
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear interpolation
// within the bucket holding it. Values in the +Inf bucket are attributed to
// the last finite bound (the estimate saturates there). Empty histograms
// yield 0.
func (h *Histogram) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum int64
	for i, c := range h.Counts {
		cum += c
		if float64(cum) >= rank && c > 0 {
			if i >= len(h.Bounds) {
				return h.Bounds[len(h.Bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.Bounds[i-1]
			}
			frac := 1 - (float64(cum)-rank)/float64(c)
			return lo + frac*(h.Bounds[i]-lo)
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// Row is one labelled measurement of a figure: a time (or throughput) plus
// the derived speedup column.
type Row struct {
	Label   string
	Value   float64 // seconds or MB/s, per the figure's unit
	Speedup float64 // vs the figure's baseline (0 = not applicable)
	Stddev  float64
	// Extra holds named auxiliary measures of the row — utilization
	// fractions, overlap estimates — rendered after the bar and carried
	// into the JSON records.
	Extra map[string]float64
}

// Table renders rows in the fixed-width layout cmd/figures prints.
type Table struct {
	Title string
	Unit  string // "s" (execution time) or "MB/s" (throughput)
	Rows  []Row
}

// Add appends a row.
func (t *Table) Add(r Row) { t.Rows = append(t.Rows, r) }

// String renders the table with an ASCII bar per row, scaled to the
// largest value.
func (t *Table) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Title)
	fmt.Fprintf(&b, "%s\n", strings.Repeat("=", len(t.Title)))
	max := 0.0
	labelW := 10
	for _, r := range t.Rows {
		if r.Value > max {
			max = r.Value
		}
		if len(r.Label) > labelW {
			labelW = len(r.Label)
		}
	}
	for _, r := range t.Rows {
		bar := ""
		if max > 0 {
			n := int(r.Value / max * 40)
			bar = strings.Repeat("#", n)
		}
		fmt.Fprintf(&b, "%-*s  %12.3f %-5s", labelW, r.Label, r.Value, t.Unit)
		if r.Speedup > 0 {
			fmt.Fprintf(&b, " %8.1fx", r.Speedup)
		} else {
			fmt.Fprintf(&b, " %9s", "")
		}
		if r.Stddev > 0 {
			fmt.Fprintf(&b, " ±%.3f", r.Stddev)
		}
		fmt.Fprintf(&b, "  %s", bar)
		if len(r.Extra) > 0 {
			keys := make([]string, 0, len(r.Extra))
			for k := range r.Extra {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			b.WriteString("  [")
			for i, k := range keys {
				if i > 0 {
					b.WriteString(" ")
				}
				fmt.Fprintf(&b, "%s=%.0f%%", k, r.Extra[k]*100)
			}
			b.WriteString("]")
		}
		b.WriteString("\n")
	}
	return b.String()
}

// RowRecord is the machine-readable form of a Row, one JSON object per
// figure row (cmd/figures -json; CI archives these as BENCH_*.json).
type RowRecord struct {
	Figure  string             `json:"figure"`
	Label   string             `json:"name"`
	Unit    string             `json:"unit"`
	Mean    float64            `json:"mean"`
	Stddev  float64            `json:"stddev"`
	Speedup float64            `json:"speedup,omitempty"`
	Extra   map[string]float64 `json:"extra,omitempty"`
}

// WriteJSON emits the table as JSON Lines: one RowRecord per row, tagged
// with the figure id.
func (t *Table) WriteJSON(w io.Writer, figure string) error {
	enc := json.NewEncoder(w)
	for _, r := range t.Rows {
		rec := RowRecord{
			Figure:  figure,
			Label:   r.Label,
			Unit:    t.Unit,
			Mean:    r.Value,
			Stddev:  r.Stddev,
			Speedup: r.Speedup,
			Extra:   r.Extra,
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}

// Find returns the row with the given label, if present.
func (t *Table) Find(label string) (Row, bool) {
	for _, r := range t.Rows {
		if r.Label == label {
			return r, true
		}
	}
	return Row{}, false
}
