package stats

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Sample stddev of the classic dataset: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if d := s.StdDev(); math.Abs(d-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", d, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 {
		t.Error("empty sample should have zero mean/stddev")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(3.5)
	if s.Mean() != 3.5 || s.StdDev() != 0 {
		t.Errorf("single sample: mean %v stddev %v", s.Mean(), s.StdDev())
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "Fig. X", Unit: "s"}
	tab.Add(Row{Label: "Sequential", Value: 400, Speedup: 1})
	tab.Add(Row{Label: "CUDA", Value: 5.4, Speedup: 74, Stddev: 0.1})
	out := tab.String()
	for _, want := range []string{"Fig. X", "Sequential", "CUDA", "74.0x", "±0.100", "####"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// The largest value gets the full bar.
	lines := strings.Split(out, "\n")
	var seqBar string
	for _, l := range lines {
		if strings.Contains(l, "Sequential") {
			seqBar = l
		}
	}
	if !strings.Contains(seqBar, strings.Repeat("#", 40)) {
		t.Errorf("largest row should have a full 40-char bar: %q", seqBar)
	}
}

func TestTableFind(t *testing.T) {
	tab := &Table{}
	tab.Add(Row{Label: "a", Value: 1})
	if r, ok := tab.Find("a"); !ok || r.Value != 1 {
		t.Error("Find(a) failed")
	}
	if _, ok := tab.Find("missing"); ok {
		t.Error("Find(missing) should fail")
	}
}

// Property: mean lies within [min, max] and stddev is non-negative.
func TestSampleInvariantsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				return true // skip inputs whose sum overflows float64
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9 && s.StdDev() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2, 5} // unsorted on purpose
	cases := []struct{ p, want float64 }{
		{0, 1}, {100, 5}, {50, 3}, {25, 2}, {75, 4}, {90, 4.6},
	}
	for _, c := range cases {
		if got := Percentile(xs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := Percentile(nil, 50); got != 0 {
		t.Errorf("Percentile(empty) = %v, want 0", got)
	}
	if xs[0] != 4 {
		t.Error("Percentile mutated its input")
	}
	var s Sample
	for _, x := range xs {
		s.Add(x)
	}
	if got := s.Percentile(50); got != 3 {
		t.Errorf("Sample.Percentile(50) = %v, want 3", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(1, 10, 100)
	for _, v := range []float64{0.5, 0.7, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count != 5 {
		t.Fatalf("Count = %d, want 5", h.Count)
	}
	if want := []int64{2, 1, 1, 1}; len(h.Counts) != len(want) {
		t.Fatalf("Counts = %v, want %v", h.Counts, want)
	} else {
		for i := range want {
			if h.Counts[i] != want[i] {
				t.Fatalf("Counts = %v, want %v", h.Counts, want)
			}
		}
	}
	if got := h.Mean(); math.Abs(got-111.24) > 1e-9 {
		t.Errorf("Mean = %v, want 111.24", got)
	}
	// Median rank falls in the (1,10] bucket.
	if q := h.Quantile(0.5); q <= 1 || q > 10 {
		t.Errorf("Quantile(0.5) = %v, want in (1,10]", q)
	}
	// The +Inf bucket saturates at the last finite bound.
	if q := h.Quantile(1); q != 100 {
		t.Errorf("Quantile(1) = %v, want 100", q)
	}
	if q := (&Histogram{}).Quantile(0.5); q != 0 {
		t.Errorf("empty Quantile = %v, want 0", q)
	}
}

func TestHistogramBadBoundsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewHistogram with descending bounds did not panic")
		}
	}()
	NewHistogram(10, 1)
}

func TestTableWriteJSON(t *testing.T) {
	tb := &Table{Title: "T", Unit: "s"}
	tb.Add(Row{Label: "Sequential", Value: 400, Speedup: 1})
	tb.Add(Row{Label: "CUDA batch 32", Value: 25, Speedup: 16, Stddev: 0.5,
		Extra: map[string]float64{"kernel_util": 0.8}})
	var b strings.Builder
	if err := tb.WriteJSON(&b, "fig1"); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines, want 2: %q", len(lines), b.String())
	}
	var rec RowRecord
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Figure != "fig1" || rec.Label != "CUDA batch 32" || rec.Mean != 25 ||
		rec.Speedup != 16 || rec.Stddev != 0.5 || rec.Extra["kernel_util"] != 0.8 {
		t.Errorf("bad record: %+v", rec)
	}
}
