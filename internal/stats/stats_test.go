package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanStdDev(t *testing.T) {
	var s Sample
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.N() != 8 {
		t.Errorf("N = %d", s.N())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", s.Mean())
	}
	// Sample stddev of the classic dataset: sqrt(32/7).
	want := math.Sqrt(32.0 / 7.0)
	if d := s.StdDev(); math.Abs(d-want) > 1e-12 {
		t.Errorf("StdDev = %v, want %v", d, want)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestEmptySample(t *testing.T) {
	var s Sample
	if s.Mean() != 0 || s.StdDev() != 0 {
		t.Error("empty sample should have zero mean/stddev")
	}
	if !math.IsInf(s.Min(), 1) || !math.IsInf(s.Max(), -1) {
		t.Error("empty Min/Max should be ±Inf")
	}
}

func TestSingleObservation(t *testing.T) {
	var s Sample
	s.Add(3.5)
	if s.Mean() != 3.5 || s.StdDev() != 0 {
		t.Errorf("single sample: mean %v stddev %v", s.Mean(), s.StdDev())
	}
}

func TestTableRendering(t *testing.T) {
	tab := &Table{Title: "Fig. X", Unit: "s"}
	tab.Add(Row{Label: "Sequential", Value: 400, Speedup: 1})
	tab.Add(Row{Label: "CUDA", Value: 5.4, Speedup: 74, Stddev: 0.1})
	out := tab.String()
	for _, want := range []string{"Fig. X", "Sequential", "CUDA", "74.0x", "±0.100", "####"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
	// The largest value gets the full bar.
	lines := strings.Split(out, "\n")
	var seqBar string
	for _, l := range lines {
		if strings.Contains(l, "Sequential") {
			seqBar = l
		}
	}
	if !strings.Contains(seqBar, strings.Repeat("#", 40)) {
		t.Errorf("largest row should have a full 40-char bar: %q", seqBar)
	}
}

func TestTableFind(t *testing.T) {
	tab := &Table{}
	tab.Add(Row{Label: "a", Value: 1})
	if r, ok := tab.Find("a"); !ok || r.Value != 1 {
		t.Error("Find(a) failed")
	}
	if _, ok := tab.Find("missing"); ok {
		t.Error("Find(missing) should fail")
	}
}

// Property: mean lies within [min, max] and stddev is non-negative.
func TestSampleInvariantsProperty(t *testing.T) {
	f := func(xs []float64) bool {
		var s Sample
		for _, x := range xs {
			if math.IsNaN(x) || math.Abs(x) > 1e100 {
				return true // skip inputs whose sum overflows float64
			}
			s.Add(x)
		}
		if s.N() == 0 {
			return true
		}
		m := s.Mean()
		return m >= s.Min()-1e-9 && m <= s.Max()+1e-9 && s.StdDev() >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
