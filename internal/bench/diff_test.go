package bench

import (
	"strings"
	"testing"
)

func report(calib float64, results ...HostResult) HostReport {
	return HostReport{Schema: "streamgpu-hostbench/v1", Calib: calib, Results: results}
}

func res(name string, value, allocs float64) HostResult {
	return HostResult{Name: name, Unit: "MB/s", Value: value, AllocsPerOp: allocs}
}

func TestDiffPassesWithinThreshold(t *testing.T) {
	base := report(100, res("dedup_seq", 20, -1), res("lzss", 10, 0))
	fresh := report(100, res("dedup_seq", 18, -1), res("lzss", 9.5, 0))
	entries, err := Diff(base, fresh, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("got %d entries, want 2", len(entries))
	}
	if bad := DiffFailures(entries); len(bad) != 0 {
		t.Fatalf("unexpected failures: %+v", bad)
	}
}

func TestDiffFailsOnThroughputDrop(t *testing.T) {
	base := report(100, res("dedup_seq", 20, -1))
	fresh := report(100, res("dedup_seq", 16, -1)) // -20% > 15% threshold
	entries, err := Diff(base, fresh, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bad := DiffFailures(entries)
	if len(bad) != 1 || !strings.Contains(bad[0].Reason, "throughput") {
		t.Fatalf("want one throughput failure, got %+v", bad)
	}
}

func TestDiffCalibrationScaling(t *testing.T) {
	// The fresh machine is half as fast (calib 50 vs 100); an absolute drop
	// from 20 to 11 MB/s is fine because the scaled baseline is 10.
	base := report(100, res("dedup_seq", 20, -1))
	fresh := report(50, res("dedup_seq", 11, -1))
	entries, err := Diff(base, fresh, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bad := DiffFailures(entries); len(bad) != 0 {
		t.Fatalf("calibration scaling did not apply: %+v", bad)
	}
	if got := entries[0].Base; got != 10 {
		t.Fatalf("scaled baseline = %v, want 10", got)
	}
	// And on equal hardware the same absolute value fails.
	fresh.Calib = 100
	entries, err = Diff(base, fresh, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bad := DiffFailures(entries); len(bad) != 1 {
		t.Fatalf("want failure without scaling, got %+v", bad)
	}
}

func TestDiffFailsOnAllocRegression(t *testing.T) {
	base := report(100, res("lzss", 10, 0))
	fresh := report(100, res("lzss", 10, 1)) // 1 > 0 + 0.25 slack
	entries, err := Diff(base, fresh, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	bad := DiffFailures(entries)
	if len(bad) != 1 || !strings.Contains(bad[0].Reason, "allocs/op") {
		t.Fatalf("want one alloc failure, got %+v", bad)
	}
	// Jitter within the slack passes.
	fresh.Results[0].AllocsPerOp = 0.2
	entries, _ = Diff(base, fresh, DiffOptions{})
	if bad := DiffFailures(entries); len(bad) != 0 {
		t.Fatalf("slack not applied: %+v", bad)
	}
}

func TestDiffSkipsUnmeasuredAllocs(t *testing.T) {
	base := report(100, res("dedup_spar", 10, -1))
	fresh := report(100, res("dedup_spar", 10, 50)) // newly measured: no baseline to regress
	entries, err := Diff(base, fresh, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if bad := DiffFailures(entries); len(bad) != 0 {
		t.Fatalf("negative baseline allocs must be exempt: %+v", bad)
	}
}

func TestDiffIgnoresNewAndMissingEntries(t *testing.T) {
	base := report(100, res("gone", 10, 0), res("kept", 10, 0))
	fresh := report(100, res("kept", 10, 0), res("added", 1, 99))
	entries, err := Diff(base, fresh, DiffOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "kept" {
		t.Fatalf("want only the shared entry, got %+v", entries)
	}
}

func TestDiffRejectsBadCalib(t *testing.T) {
	if _, err := Diff(report(0), report(100), DiffOptions{}); err == nil {
		t.Fatal("want error for zero baseline calib")
	}
}
