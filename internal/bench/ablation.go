package bench

import (
	"fmt"

	"streamgpu/internal/stats"
	"streamgpu/internal/workload"
)

// SweepBatchRows is the ablation behind §IV-A's occupancy analysis: the
// Titan XP holds 61,440 resident threads, so at 2,000 pixels per row the
// device needs ≈30.7 rows per kernel call to fill up ("by sending batches
// of 32 lines to the kernel function, we can achieve 44–45× speedup").
// The sweep runs the batched pipeline at increasing rows-per-batch and
// reports execution time; the knee sits where rows × dim crosses the
// resident-thread capacity.
func (pr *Prep) SweepBatchRows(api API, rowCounts []int) *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("Ablation — rows per batch (%s, 1 GPU, 1 memory space)", api),
		Unit:  "s",
	}
	seq := pr.SeqTime().Seconds()
	saved := pr.Cfg.BatchRows
	defer func() { pr.Cfg.BatchRows = saved }()
	for _, rows := range rowCounts {
		pr.Cfg.BatchRows = rows
		sec := pr.RunBatched(api, 1, 1).Seconds()
		t.Add(stats.Row{
			Label:   fmt.Sprintf("%3d rows (%6d threads)", rows, rows*pr.Cfg.Params.Dim),
			Value:   sec,
			Speedup: seq / sec,
		})
	}
	return t
}

// SweepWorkers is the ablation for the paper's replica counts (19 workers
// CPU-only): CPU-only speedup as a function of the compute stage's
// replication degree, saturating at the host's core-equivalents.
func (pr *Prep) SweepWorkers(fw Framework, workerCounts []int) *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("Ablation — CPU workers (%s)", fw),
		Unit:  "s",
	}
	seq := pr.SeqTime().Seconds()
	for _, w := range workerCounts {
		sec := pr.RunCPUPipeline(fw, w).Seconds()
		t.Add(stats.Row{
			Label:   fmt.Sprintf("%2d workers", w),
			Value:   sec,
			Speedup: seq / sec,
		})
	}
	return t
}

// SweepDedupBatchSize is the ablation behind §IV-B's fragmentation choice:
// Dedup throughput as a function of the fixed batch size. Small batches
// re-create the un-batched problem (launch overhead, low occupancy, more
// per-batch commands); the paper settled on 1 MB after a 10 MB attempt ran
// OpenCL out of memory.
func SweepDedupBatchSize(spec workload.Spec, cal Calibration, v DedupVariant, batchSizes []int) *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("Ablation — Dedup batch size (%s, %s)", spec.Kind, v.Label),
		Unit:  "MB/s",
	}
	for _, bs := range batchSizes {
		dp := NewDedupPrep(spec, bs)
		end := dp.RunGPU(cal, v)
		t.Add(stats.Row{
			Label: fmt.Sprintf("%4d KiB batches", bs/1024),
			Value: float64(dp.Size) / 1e6 / end.Seconds(),
		})
	}
	return t
}
