package bench

import (
	"fmt"

	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
	"streamgpu/internal/stats"
)

// Fig4 regenerates the Mandelbrot programming-model comparison: sequential,
// the three multicore runtimes CPU-only (19 workers), the two GPU APIs
// single-threaded (best Fig. 1 configuration), and every multicore×GPU
// combination (10 workers), for the given number of GPUs.
func (pr *Prep) Fig4(gpus int) *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("Fig. 4 — Mandelbrot across programming models (%d GPU(s))", gpus),
		Unit:  "s",
	}
	seq := pr.SeqTime().Seconds()
	add := func(label string, sec float64) {
		t.Add(stats.Row{Label: label, Value: sec, Speedup: seq / sec})
	}
	t.Add(stats.Row{Label: "Sequential", Value: seq, Speedup: 1})
	for _, fw := range []Framework{SPar, TBB, FastFlow} {
		add(string(fw), pr.RunCPUPipeline(fw, pr.Cfg.CPUWorkers).Seconds())
	}
	// GPU-only, single CPU thread: the paper runs these with 4× memory per
	// GPU (§V-A).
	for _, api := range []API{CUDA, OpenCL} {
		add(string(api), pr.RunBatched(api, 4*gpus, gpus).Seconds())
	}
	for _, fw := range []Framework{SPar, TBB, FastFlow} {
		for _, api := range []API{CUDA, OpenCL} {
			add(fmt.Sprintf("%s+%s", fw, api),
				pr.RunComboPipeline(fw, api, gpus, pr.Cfg.GPUWorkers).Seconds())
		}
	}
	return t
}

// RunCPUPipeline models the CPU-only 3-stage streaming app on a given
// runtime: source → replicated compute → ordered display, with the
// framework's queueing semantics and the host's 17 core-equivalents.
func (pr *Prep) RunCPUPipeline(fw Framework, workers int) des.Time {
	p := pr.Cfg.Params
	cal := pr.Cfg.Cal
	sim := des.New()
	cores := des.NewResource(sim, "cores", cal.EffectiveCores)
	var tokens *des.Resource
	if cap := tokenCap(fw, workers, false); cap > 0 {
		tokens = des.NewResource(sim, "tokens", cap)
	}
	in := des.NewQueue[int](sim, "rows", 512)
	out := des.NewQueue[int](sim, "done", 512)

	sim.Spawn("source", func(proc *des.Proc) {
		for i := 0; i < p.Dim; i++ {
			if tokens != nil {
				tokens.Acquire(proc, 1)
			}
			proc.Wait(des.Duration(cal.EmitNs))
			in.Put(proc, i)
		}
		in.Close()
	})
	for w := 0; w < workers; w++ {
		sim.Spawn(fmt.Sprintf("worker%d", w), func(proc *des.Proc) {
			for {
				i, ok := in.Get(proc)
				if !ok {
					return
				}
				compute := des.Duration(float64(pr.RowIters[i]) * pr.cpuIterNs())
				cores.Acquire(proc, 1)
				proc.Wait(compute + cal.overhead(fw))
				cores.Release(proc, 1)
				out.Put(proc, i)
			}
		})
	}
	sim.Spawn("collector", func(proc *des.Proc) {
		for seen := 0; seen < p.Dim; seen++ {
			if _, ok := out.Get(proc); !ok {
				return
			}
			proc.Wait(pr.displayCost(1))
			if tokens != nil {
				tokens.Release(proc, 1)
			}
		}
	})
	end, err := sim.Run()
	if err != nil {
		panic(err)
	}
	return end
}

// comboItem is a batch in flight through the multicore+GPU pipeline.
type comboItem struct {
	rows int
	wait func(*des.Proc) // cudaStreamSynchronize / clWaitForEvents at the sink
}

// RunComboPipeline models the multicore+GPU apps of §IV-A: a source
// emitting 32-row batches, `workers` replicated middle stages each owning
// its own stream (and per-item host buffers, as the thread-safety rules
// require), round-robin over the available GPUs, and an ordered display
// stage that synchronizes on each item's event.
func (pr *Prep) RunComboPipeline(fw Framework, api API, gpus, workers int) des.Time {
	p := pr.Cfg.Params
	cal := pr.Cfg.Cal
	rows := pr.Cfg.BatchRows
	nBatches := (p.Dim + rows - 1) / rows
	batchBytes := int64(rows * p.Dim)
	spec := pr.Cache.BatchKernel()

	sim := des.New()
	devs := newDevices(sim, gpus, pr.Cfg.Telemetry)
	a := newAPICtx(api, sim, devs)
	var tokens *des.Resource
	if cap := tokenCap(fw, workers, true); cap > 0 {
		tokens = des.NewResource(sim, "tokens", cap)
	}
	in := des.NewQueue[int](sim, "batches", 512)
	out := des.NewQueue[comboItem](sim, "done", 512)

	sim.Spawn("source", func(proc *des.Proc) {
		for b := 0; b < nBatches; b++ {
			if tokens != nil {
				tokens.Acquire(proc, 1)
			}
			proc.Wait(des.Duration(cal.EmitNs))
			in.Put(proc, b)
		}
		in.Close()
	})
	for w := 0; w < workers; w++ {
		dev := w % gpus
		sim.Spawn(fmt.Sprintf("worker%d", w), func(proc *des.Proc) {
			q := a.queue(proc, dev)
			dImg := a.malloc(proc, dev, batchBytes)
			for {
				b, ok := in.Get(proc)
				if !ok {
					return
				}
				r := rows
				if (b+1)*rows > p.Dim {
					r = p.Dim - b*rows
				}
				proc.Wait(cal.overhead(fw))
				// Per-item pinned host buffer (the per-item
				// stream/cl_kernel pattern from §IV-A).
				hImg := gpu.NewPinnedBuf(batchBytes)
				q.launch(proc, spec, gpu.Grid1D(r*p.Dim, 128), b, rows, dImg.raw, pr.iterCycles())
				q.copyD2H(proc, hImg, dImg, int64(r*p.Dim))
				wait := q.record(proc)
				out.Put(proc, comboItem{rows: r, wait: wait})
			}
		})
	}
	sim.Spawn("collector", func(proc *des.Proc) {
		for seen := 0; seen < nBatches; seen++ {
			it, ok := out.Get(proc)
			if !ok {
				return
			}
			it.wait(proc) // last stage waits for the async copy (§IV-A)
			proc.Wait(pr.displayCost(it.rows))
			if tokens != nil {
				tokens.Release(proc, 1)
			}
		}
	})
	end, err := sim.Run()
	if err != nil {
		panic(err)
	}
	return end
}
