package bench

import (
	"sync"
	"testing"

	"streamgpu/internal/workload"
)

// The shape tests assert the paper's qualitative findings on a reduced
// physical scale (TestConfig): orderings, crossovers and rough factors, not
// absolute numbers. The full-scale regeneration lives in cmd/figures and
// the root bench_test.go.

var (
	prepOnce sync.Once
	prepVal  *Prep
)

// testPrep builds the shared iteration cache once per test binary.
func testPrep() *Prep {
	prepOnce.Do(func() { prepVal = NewPrep(TestConfig()) })
	return prepVal
}

func speedup(pr *Prep, sec float64) float64 {
	return pr.SeqTime().Seconds() / sec
}

func TestFig1LadderShape(t *testing.T) {
	pr := testPrep()
	naive := pr.RunRowPerKernel(CUDA, false).Seconds()
	twoD := pr.RunRowPerKernel(CUDA, true).Seconds()
	batch := pr.RunBatched(CUDA, 1, 1).Seconds()
	overlap2 := pr.RunBatched(CUDA, 2, 1).Seconds()
	overlap4 := pr.RunBatched(CUDA, 4, 1).Seconds()
	twoGPU := pr.RunBatched(CUDA, 4, 2).Seconds()

	// The ladder must be monotone in the paper's direction.
	if !(twoD > naive) {
		t.Errorf("2D grid (%.2fs) should be slower than 1D naive (%.2fs)", twoD, naive)
	}
	if !(naive > batch) {
		t.Errorf("naive (%.2fs) should be slower than batched (%.2fs)", naive, batch)
	}
	if !(batch > overlap2*1.05) {
		t.Errorf("batch sync (%.2fs) should be slower than 2x-mem overlap (%.2fs)", batch, overlap2)
	}
	if overlap4 > overlap2*1.01 {
		t.Errorf("4x mem (%.2fs) should not be slower than 2x mem (%.2fs)", overlap4, overlap2)
	}
	if !(overlap4 > twoGPU*1.3) {
		t.Errorf("2 GPUs (%.2fs) should clearly beat 1 GPU (%.2fs)", twoGPU, overlap4)
	}

	// Rough factors (wide bands; paper: 3.1/1.6/45/67-74/130).
	if s := speedup(pr, naive); s < 1.5 || s > 6 {
		t.Errorf("naive speedup %.1fx outside [1.5,6]", s)
	}
	if s := speedup(pr, batch); s < 20 || s > 80 {
		t.Errorf("batch speedup %.1fx outside [20,80]", s)
	}
	if s := speedup(pr, overlap4); s < 40 || s > 110 {
		t.Errorf("overlap speedup %.1fx outside [40,110]", s)
	}
	if s := speedup(pr, twoGPU); s < 70 || s > 200 {
		t.Errorf("2-GPU speedup %.1fx outside [70,200]", s)
	}
}

func TestFig1CUDAOpenCLParity(t *testing.T) {
	// §V-A: CUDA and OpenCL deliver near-identical Mandelbrot performance,
	// CUDA marginally ahead.
	pr := testPrep()
	c := pr.RunBatched(CUDA, 4, 1).Seconds()
	o := pr.RunBatched(OpenCL, 4, 1).Seconds()
	if o < c {
		t.Errorf("OpenCL (%.3fs) should not beat CUDA (%.3fs)", o, c)
	}
	if o > c*1.10 {
		t.Errorf("OpenCL (%.3fs) should be within 10%% of CUDA (%.3fs)", o, c)
	}
}

func TestFig4CPUOnlyShape(t *testing.T) {
	pr := testPrep()
	cores := float64(pr.Cfg.Cal.EffectiveCores)
	for _, fw := range []Framework{SPar, FastFlow, TBB} {
		s := speedup(pr, pr.RunCPUPipeline(fw, pr.Cfg.CPUWorkers).Seconds())
		// 19 workers on 17 core-equivalents: speedup close to 17 (paper ~17×).
		if s < cores*0.8 || s > cores*1.05 {
			t.Errorf("%s CPU-only speedup %.1fx outside [%.1f, %.1f]", fw, s, cores*0.8, cores*1.05)
		}
	}
}

func TestFig4FrameworksWithinNoise(t *testing.T) {
	// The three models perform within a few percent of each other (§V-A).
	pr := testPrep()
	var min, max float64
	for i, fw := range []Framework{SPar, FastFlow, TBB} {
		v := pr.RunCPUPipeline(fw, pr.Cfg.CPUWorkers).Seconds()
		if i == 0 || v < min {
			min = v
		}
		if i == 0 || v > max {
			max = v
		}
	}
	if max > min*1.10 {
		t.Errorf("framework spread too wide: min %.3fs, max %.3fs", min, max)
	}
}

func TestFig4ComboBeatsSingleThreadOn2GPUs(t *testing.T) {
	// §V-A: "When using two GPUs, the single thread on GPU degrades the
	// performance since combining SPar, TBB, or FastFlow with CUDA
	// increases the performance."
	pr := testPrep()
	single := pr.RunBatched(CUDA, 4*2, 2).Seconds()
	combo := pr.RunComboPipeline(SPar, CUDA, 2, pr.Cfg.GPUWorkers).Seconds()
	if combo >= single {
		t.Errorf("SPar+CUDA on 2 GPUs (%.3fs) should beat single-threaded CUDA (%.3fs)", combo, single)
	}
}

func TestFig4ComboNearGPUOnlyOn1GPU(t *testing.T) {
	// §V-A: with one GPU, SPar+CUDA performs like CUDA alone.
	pr := testPrep()
	single := pr.RunBatched(CUDA, 4, 1).Seconds()
	combo := pr.RunComboPipeline(SPar, CUDA, 1, pr.Cfg.GPUWorkers).Seconds()
	ratio := combo / single
	if ratio < 0.7 || ratio > 1.3 {
		t.Errorf("SPar+CUDA/CUDA ratio on 1 GPU = %.2f, want within [0.7, 1.3]", ratio)
	}
}

// testDedupPrep builds a small dataset once.
var (
	dedupOnce sync.Once
	dedupVal  *DedupPrep
)

func testDedupPrep() *DedupPrep {
	dedupOnce.Do(func() {
		dedupVal = NewDedupPrep(workload.Spec{Kind: workload.Linux, Size: 4 << 20, Seed: 2}, 128*1024)
	})
	return dedupVal
}

func TestFig5BatchOptimizationShape(t *testing.T) {
	dp := testDedupPrep()
	cal := Default()
	noBatch := dp.RunGPU(cal, DedupVariant{API: CUDA, Batched: false, Spaces: 1, GPUs: 1})
	batch := dp.RunGPU(cal, DedupVariant{API: CUDA, Batched: true, Spaces: 1, GPUs: 1})
	if !(float64(noBatch) > float64(batch)*3) {
		t.Errorf("no-batch (%v) should be at least 3x slower than batched (%v): the paper's central Dedup finding", noBatch, batch)
	}
}

func TestFig5CUDA2xMemFlat(t *testing.T) {
	// §V-B: 2× memory spaces do not help CUDA (realloc → pageable).
	dp := testDedupPrep()
	cal := Default()
	one := dp.RunGPU(cal, DedupVariant{API: CUDA, Batched: true, Spaces: 1, GPUs: 1})
	two := dp.RunGPU(cal, DedupVariant{API: CUDA, Batched: true, Spaces: 2, GPUs: 1})
	diff := float64(one-two) / float64(one)
	if diff > 0.05 || diff < -0.05 {
		t.Errorf("CUDA 2x mem changed time by %.1f%%, want ~0 (pageable copies cannot overlap)", diff*100)
	}
}

func TestFig5OpenCL2xMemGains(t *testing.T) {
	// §V-B: 2× memory spaces do help OpenCL.
	dp := testDedupPrep()
	cal := Default()
	one := dp.RunGPU(cal, DedupVariant{API: OpenCL, Batched: true, Spaces: 1, GPUs: 1})
	two := dp.RunGPU(cal, DedupVariant{API: OpenCL, Batched: true, Spaces: 2, GPUs: 1})
	if !(float64(one) > float64(two)*1.10) {
		t.Errorf("OpenCL 2x mem (%v) should be at least 10%% faster than 1x (%v)", two, one)
	}
}

func TestFig5CUDABestAt1GPU(t *testing.T) {
	// §V-B: "The best results were achieved combining SPar with CUDA."
	dp := testDedupPrep()
	cal := Default()
	cuda := dp.RunGPU(cal, DedupVariant{API: CUDA, Batched: true, Spaces: 1, GPUs: 1})
	for _, v := range []DedupVariant{
		{API: OpenCL, Batched: true, Spaces: 1, GPUs: 1},
		{API: OpenCL, Batched: true, Spaces: 2, GPUs: 1},
	} {
		o := dp.RunGPU(cal, v)
		if float64(o) < float64(cuda)*0.97 {
			t.Errorf("OpenCL %+v (%v) should not beat CUDA batch (%v) at 1 GPU", v, o, cuda)
		}
	}
}

func TestFig5GPUBeatsCPU(t *testing.T) {
	dp := testDedupPrep()
	cal := Default()
	cpu := dp.RunCPU(cal, 19)
	gpu := dp.RunGPU(cal, DedupVariant{API: CUDA, Batched: true, Spaces: 1, GPUs: 1})
	if gpu >= cpu {
		t.Errorf("CUDA batched Dedup (%v) should beat CPU-only (%v)", gpu, cpu)
	}
}

func TestFig5TwoGPUsScale(t *testing.T) {
	dp := testDedupPrep()
	cal := Default()
	one := dp.RunGPU(cal, DedupVariant{API: OpenCL, Batched: true, Spaces: 2, GPUs: 1})
	two := dp.RunGPU(cal, DedupVariant{API: OpenCL, Batched: true, Spaces: 2, GPUs: 2})
	if !(float64(one) > float64(two)*1.05) {
		t.Errorf("2 GPUs (%v) should beat 1 GPU (%v)", two, one)
	}
}

func TestFig5DatasetOrdering(t *testing.T) {
	// Linux (heavy duplication) must reach higher CPU throughput than
	// Silesia (no duplication): dedup skips compression work.
	cal := Default()
	linux := testDedupPrep()
	silesia := NewDedupPrep(workload.Spec{Kind: workload.Silesia, Size: 2 << 20, Seed: 3}, 128*1024)
	tpLinux := float64(linux.Size) / linux.RunCPU(cal, 19).Seconds()
	tpSilesia := float64(silesia.Size) / silesia.RunCPU(cal, 19).Seconds()
	if tpLinux <= tpSilesia {
		t.Errorf("Linux CPU throughput (%.0f B/s) should exceed Silesia (%.0f B/s)", tpLinux, tpSilesia)
	}
}

func TestSeqTimeScalesWithWork(t *testing.T) {
	pr := testPrep()
	if pr.SeqTime() <= 0 {
		t.Fatal("sequential time must be positive")
	}
	// Doubling the iteration cost doubles the modelled time.
	cfg := pr.Cfg
	cfg.Cal.CPUIterNs *= 2
	pr2 := &Prep{Cfg: cfg, Cache: pr.Cache, TotalIters: pr.TotalIters, RowIters: pr.RowIters}
	if pr2.SeqTime() != 2*pr.SeqTime() {
		t.Errorf("SeqTime not linear in CPUIterNs")
	}
}

func TestTablesComplete(t *testing.T) {
	pr := testPrep()
	f1 := pr.Fig1()
	if len(f1.Rows) != 15 {
		t.Errorf("Fig1 rows = %d, want 15", len(f1.Rows))
	}
	if _, ok := f1.Find("Sequential"); !ok {
		t.Error("Fig1 missing Sequential row")
	}
	f4 := pr.Fig4(1)
	if len(f4.Rows) != 12 {
		t.Errorf("Fig4 rows = %d, want 12", len(f4.Rows))
	}
	dp := testDedupPrep()
	f5 := Fig5(dp, Default())
	if len(f5.Rows) != len(Fig5Variants()) {
		t.Errorf("Fig5 rows = %d, want %d", len(f5.Rows), len(Fig5Variants()))
	}
}

func TestAblationBatchRowsKnee(t *testing.T) {
	// §IV-A: the device needs ~30.7 rows per kernel to reach full
	// occupancy; time must fall steeply up to 32 rows and flatten after.
	pr := testPrep()
	tab := pr.SweepBatchRows(CUDA, []int{1, 4, 32, 64})
	get := func(i int) float64 { return tab.Rows[i].Value }
	if !(get(0) > get(1) && get(1) > get(2)) {
		t.Errorf("time should fall with batch rows: %v, %v, %v", get(0), get(1), get(2))
	}
	if get(0)/get(2) < 3 {
		t.Errorf("1 row -> 32 rows should give >= 3x: %v -> %v", get(0), get(2))
	}
	if get(2)/get(3) > 1.5 {
		t.Errorf("32 -> 64 rows should be nearly flat: %v -> %v", get(2), get(3))
	}
}

func TestAblationWorkersSaturate(t *testing.T) {
	pr := testPrep()
	tab := pr.SweepWorkers(SPar, []int{1, 4, 17, 25})
	s := func(i int) float64 { return tab.Rows[i].Speedup }
	if !(s(0) < s(1) && s(1) < s(2)) {
		t.Errorf("speedup should grow with workers: %v %v %v", s(0), s(1), s(2))
	}
	// Beyond the host's 17 core-equivalents, no further gain.
	if s(3) > s(2)*1.05 {
		t.Errorf("25 workers (%.1fx) should not beat 17 (%.1fx) on a 17-core-equivalent host", s(3), s(2))
	}
}

func TestAblationDedupBatchSize(t *testing.T) {
	spec := workload.Spec{Kind: workload.Linux, Size: 2 << 20, Seed: 5}
	v := DedupVariant{Label: "CUDA batch", API: CUDA, Batched: true, Spaces: 1, GPUs: 1}
	tab := SweepDedupBatchSize(spec, Default(), v, []int{16 * 1024, 128 * 1024})
	if tab.Rows[0].Value >= tab.Rows[1].Value {
		t.Errorf("tiny batches (%.0f MB/s) should underperform large ones (%.0f MB/s)",
			tab.Rows[0].Value, tab.Rows[1].Value)
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	// Virtual time must be bit-reproducible across runs.
	pr := testPrep()
	if a, b := pr.RunBatched(CUDA, 2, 1), pr.RunBatched(CUDA, 2, 1); a != b {
		t.Errorf("RunBatched not deterministic: %v vs %v", a, b)
	}
	if a, b := pr.RunComboPipeline(SPar, OpenCL, 2, 4), pr.RunComboPipeline(SPar, OpenCL, 2, 4); a != b {
		t.Errorf("RunComboPipeline not deterministic: %v vs %v", a, b)
	}
	dp := testDedupPrep()
	v := DedupVariant{API: CUDA, Batched: true, Spaces: 2, GPUs: 2}
	if a, b := dp.RunGPU(Default(), v), dp.RunGPU(Default(), v); a != b {
		t.Errorf("RunGPU not deterministic: %v vs %v", a, b)
	}
}
