package bench

// Host-throughput suite: unlike the Fig. 1/4/5 experiments, which run in
// virtual time on the simulated device, these measurements time the *real*
// host-side hot paths — the Dedup pipeline stages, Mandelbrot row
// computation, and the ff.SPSC queue — and count heap allocations per
// operation. cmd/benchhost emits the report as JSON; cmd/benchdiff compares
// a fresh run against the committed BENCH_baseline.json and fails the build
// on throughput or allocation regressions (see DESIGN.md §10).

import (
	"io"
	"runtime"
	"sync"
	"time"

	"streamgpu/internal/dedup"
	"streamgpu/internal/ff"
	"streamgpu/internal/lzss"
	"streamgpu/internal/mandel"
	"streamgpu/internal/rabin"
	"streamgpu/internal/sha1x"
	"streamgpu/internal/workload"
)

// HostResult is one measurement of the host suite. AllocsPerOp < 0 means
// allocation accounting was not meaningful for this entry (multi-goroutine
// pipelines); benchdiff skips negative values.
type HostResult struct {
	Name        string  `json:"name"`
	Unit        string  `json:"unit"`
	Value       float64 `json:"value"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// HostReport is the full suite output, the schema committed as
// BENCH_baseline.json.
type HostReport struct {
	Schema     string `json:"schema"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// Calib is a machine-speed scalar (single-thread SHA-1 MB/s over a fixed
	// buffer). benchdiff normalizes throughput thresholds by the ratio of
	// fresh to baseline Calib, so a committed baseline stays meaningful on
	// hardware of a different speed.
	Calib   float64      `json:"calib"`
	Results []HostResult `json:"results"`
}

// HostOptions sizes the host suite.
type HostOptions struct {
	// InputBytes is the Dedup workload size (default 4 MiB).
	InputBytes int
	// MinTime is the minimum measuring window per entry (default 250 ms).
	MinTime time.Duration
	// Workers is the parallel-pipeline width (default max(2, GOMAXPROCS)).
	Workers int
}

func (o HostOptions) inputBytes() int {
	if o.InputBytes <= 0 {
		return 4 << 20
	}
	return o.InputBytes
}

func (o HostOptions) minTime() time.Duration {
	if o.MinTime <= 0 {
		return 250 * time.Millisecond
	}
	return o.MinTime
}

func (o HostOptions) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	w := runtime.GOMAXPROCS(0)
	if w < 2 {
		w = 2
	}
	return w
}

// hostTime runs fn repeatedly until the measuring window has elapsed and
// returns the mean seconds per op.
func hostTime(min time.Duration, fn func()) float64 {
	fn() // warm caches and pools
	var (
		elapsed time.Duration
		ops     int
	)
	for elapsed < min {
		t0 := time.Now()
		fn()
		elapsed += time.Since(t0)
		ops++
	}
	return elapsed.Seconds() / float64(ops)
}

// hostAllocs returns the mean heap allocations per call of fn, measured on
// the calling goroutine via the runtime's malloc counter.
func hostAllocs(iters int, fn func()) float64 {
	fn() // steady state: warm free lists before counting
	runtime.GC()
	// The GC just swept the sync.Pool-backed free lists; run once more so the
	// refill allocations land outside the counted window. Eviction is a GC
	// policy cost, not a per-op cost, and counting it would make the
	// zero-alloc pins flap with collector timing.
	fn()
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	for i := 0; i < iters; i++ {
		fn()
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(iters)
}

// calibScore measures single-thread SHA-1 MB/s over a fixed 1 MiB buffer —
// the machine-speed normalizer for cross-host baseline comparison.
func calibScore() float64 {
	buf := workload.Generate(workload.Spec{Kind: workload.Silesia, Size: 1 << 20, Seed: 9})
	sec := hostTime(200*time.Millisecond, func() { sha1x.Sum20(buf) })
	return float64(len(buf)) / 1e6 / sec
}

// Calib exposes the machine-speed normalizer for other report producers
// (e.g. the load generator), so their reports can be diffed against
// baselines recorded on different hosts with the same scaling rule Diff
// applies to hostbench reports.
func Calib() float64 { return calibScore() }

// RunHost executes the host-throughput suite and returns the report.
func RunHost(opt HostOptions) HostReport {
	rep := HostReport{
		Schema:     "streamgpu-hostbench/v1",
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Calib:      calibScore(),
	}
	min := opt.minTime()
	input := workload.Generate(workload.Spec{Kind: workload.Large, Size: opt.inputBytes(), Seed: 1})
	mb := float64(len(input)) / 1e6
	add := func(name, unit string, value, allocs float64) {
		rep.Results = append(rep.Results, HostResult{Name: name, Unit: unit, Value: value, AllocsPerOp: allocs})
	}

	// --- Dedup end-to-end (host wall clock, archive to io.Discard) ---
	sec := hostTime(min, func() {
		if _, err := dedup.CompressSeq(input, io.Discard, dedup.Options{}); err != nil {
			panic(err)
		}
	})
	seqMBs := mb / sec
	add("dedup_seq", "MB/s", seqMBs, -1)
	sec = hostTime(min, func() {
		if _, err := dedup.CompressSPar(input, io.Discard, dedup.Options{Workers: opt.workers()}); err != nil {
			panic(err)
		}
	})
	sparMBs := mb / sec
	add("dedup_spar", "MB/s", sparMBs, -1)
	// The parallel/sequential ratio is dimensionless (unit "x"), which exempts
	// it from Diff's calib scaling — the CI gate asserts it directly with
	// benchdiff -require at GOMAXPROCS > 1.
	add("dedup_spar_speedup", "x", sparMBs/seqMBs, -1)

	// --- Dedup per-stage throughput ---
	addDedupStages(add, min, input)

	// --- Mandelbrot host rows/s on the FastFlow runtime ---
	p := mandel.Params{Dim: 128, Niter: 256, InitA: -2.0, InitB: -1.25, Range: 2.5}
	sec = hostTime(min, func() {
		if _, err := mandel.RunFF(p, opt.workers()); err != nil {
			panic(err)
		}
	})
	add("mandel_ff_rows", "rows/s", float64(p.Dim)/sec, -1)

	// --- SPSC queue transfer ---
	ops, allocs := spscTransfer(min)
	add("spsc_transfer", "ops/s", ops, allocs)

	return rep
}

// addDedupStages measures each pipeline stage in isolation over the same
// input: fragmentation (Rabin boundaries), SHA-1 block hashing, and LZSS
// match+encode, plus allocation counts on the kernel hot paths.
func addDedupStages(add func(name, unit string, value, allocs float64), min time.Duration, input []byte) {
	mb := float64(len(input)) / 1e6

	// Stage 1: fragmentation. One op = the full input, through the pooled
	// path the streaming pipeline uses (recycled batches and boundary
	// arrays).
	frag := func() {
		dedup.FragmentInto(input, dedup.DefaultBatchSize, func(b *dedup.Batch) { b.Release() })
	}
	sec := hostTime(min, frag)
	add("dedup_fragment", "MB/s", mb/sec, hostAllocs(4, frag))

	// A single batch for the per-batch kernels.
	var batch *dedup.Batch
	dedup.Fragment(input, dedup.DefaultBatchSize, func(b *dedup.Batch) {
		if batch == nil {
			batch = b
		}
	})
	bmb := float64(len(batch.Data)) / 1e6

	// Stage 2: SHA-1 over every block of one batch.
	hash := func() { batch.HashBlocks() }
	sec = hostTime(min, hash)
	add("dedup_hash", "MB/s", bmb/sec, hostAllocs(8, hash))

	// Stage 4 core: LZSS match-finding over one batch, with the reusable
	// matcher the compress-stage replicas hold.
	ml := make([]int32, len(batch.Data))
	mo := make([]int32, len(batch.Data))
	m := lzss.NewMatcher()
	find := func() { m.FindMatches(batch.Data, batch.StartPos, ml, mo) }
	sec = hostTime(min, find)
	add("lzss_find_matches", "MB/s", bmb/sec, hostAllocs(8, find))

	// Stage 4 core, lane-parallel: the same match-finding fanned out across
	// DefaultLanes pooled matchers (bit-exact to the sequential pass). The
	// zero-alloc pin covers the whole spawn/join machinery.
	findPar := func() { lzss.FindMatchesPar(0, batch.Data, batch.StartPos, ml, mo) }
	sec = hostTime(min, findPar)
	add("lzss_find_matches_par", "MB/s", bmb/sec, hostAllocs(8, findPar))

	// Stage 4 end-to-end: per-block compression of one batch through the
	// pipeline's lane-parallel compress stage, every block marked a first
	// sighting so the whole batch is encoded each op.
	batch.MarkFirsts(allFirsts{})
	compress := func() { batch.CompressFirsts(m, lzss.DefaultLanes()) }
	sec = hostTime(min, compress)
	add("dedup_compress", "MB/s", bmb/sec, hostAllocs(4, compress))

	// Dedup-hint store under contention: GOMAXPROCS goroutines hammering one
	// sharded store with overlapping batches of hashes. Allocation accounting
	// is multi-goroutine, hence exempt.
	ops := storeContended(min)
	add("store_contended_lookup", "ops/s", ops, -1)

	// Stage 1 core: Rabin boundary scan alone, appending into a recycled
	// array.
	ch := rabin.NewChunker()
	data := batch.Data
	var starts []int32
	bounds := func() { starts = ch.AppendBoundaries(starts[:0], data) }
	sec = hostTime(min, bounds)
	add("rabin_boundaries", "MB/s", bmb/sec, hostAllocs(8, bounds))
}

// allFirsts is a BlockStore that reports every block as a first sighting,
// so the compress benchmark encodes the whole batch each op.
type allFirsts struct{}

func (allFirsts) FirstSightings(hashes [][sha1x.Size]byte, dst []bool) {
	for i := range hashes {
		dst[i] = true
	}
}

// storeContended measures the sharded duplicate store's lookup rate under
// contention: GOMAXPROCS goroutines each sweeping the same pre-inserted hash
// set, so every probe contends on stripe locks without mutating the table.
// Returns hashes looked up per second across all workers.
func storeContended(min time.Duration) float64 {
	const n = 4096
	hashes := make([][sha1x.Size]byte, n)
	for i := range hashes {
		hashes[i] = sha1x.Sum20([]byte{byte(i), byte(i >> 8), 0x5C})
	}
	store := dedup.NewStore()
	seed := make([]bool, n)
	store.FirstSightings(hashes, seed) // pre-insert: measured traffic is all lookups
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2
	}
	dsts := make([][]bool, workers)
	for i := range dsts {
		dsts[i] = make([]bool, n)
	}
	oneRun := func() {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				store.FirstSightings(hashes, dsts[w])
			}()
		}
		wg.Wait()
	}
	sec := hostTime(min, oneRun)
	return float64(workers) * n / sec
}

// spscTransferN is how many elements one SPSC measurement moves.
const spscTransferN = 1 << 19

// spscTransfer measures the queue's producer→consumer transfer rate in the
// shape the runtime uses it (blocking mode, dedicated producer and consumer
// goroutines, burst push/pop) and the allocations per transferred element.
func spscTransfer(min time.Duration) (opsPerSec, allocsPerOp float64) {
	q := ff.NewSPSC[int64](1024, false)
	oneRun := func() {
		done := make(chan struct{})
		go func() {
			buf := make([]int64, 64)
			for i := range buf {
				buf[i] = int64(i)
			}
			sent := 0
			for sent < spscTransferN {
				n := len(buf)
				if spscTransferN-sent < n {
					n = spscTransferN - sent
				}
				pushed := q.TryPushN(buf[:n])
				if pushed == 0 {
					runtime.Gosched()
				}
				sent += pushed
			}
			close(done)
		}()
		buf := make([]int64, 64)
		var sink int64
		got := 0
		for got < spscTransferN {
			n := q.TryPopN(buf)
			if n == 0 {
				runtime.Gosched()
				continue
			}
			for i := 0; i < n; i++ {
				sink += buf[i]
			}
			got += n
		}
		<-done
		_ = sink
	}
	sec := hostTime(min, oneRun)

	// Allocation count on the single-goroutine fast path (burst push + pop;
	// the concurrent path above would charge scheduler noise).
	q2 := ff.NewSPSC[int64](256, false)
	buf := make([]int64, 64)
	allocs := hostAllocs(4, func() {
		for i := 0; i < 16; i++ {
			q2.TryPushN(buf)
			q2.TryPopN(buf)
		}
	}) / 1024
	return spscTransferN / sec, allocs
}
