package bench

import (
	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
	"streamgpu/internal/stats"
)

// Util summarizes how well a configuration keeps the GPU engines fed over
// one run: the fraction of the makespan the compute engine was busy, the
// fraction a PCIe copy engine was busy, and the fraction during which copies
// and compute ran *simultaneously* — the copy/compute overlap the paper's
// 2×/4×-memory-space optimization exists to create. All fractions are
// averages over the run's devices.
type Util struct {
	KernelUtil float64
	CopyUtil   float64
	Overlap    float64
}

// utilOf derives Util from the device stats of a finished run.
func utilOf(devs []*gpu.Device, makespan des.Time) Util {
	if len(devs) == 0 || makespan <= 0 {
		return Util{}
	}
	span := makespan.Seconds()
	var u Util
	for _, d := range devs {
		st := d.Stats()
		u.KernelUtil += st.KernelBusy.Seconds() / span
		u.CopyUtil += (st.CopyBusyH2D + st.CopyBusyD2H).Seconds() / span
		u.Overlap += st.OverlapBusy.Seconds() / span
	}
	n := float64(len(devs))
	u.KernelUtil /= n
	u.CopyUtil /= n
	u.Overlap /= n
	return u
}

// Extra renders the utilization as a Row's auxiliary columns.
func (u Util) Extra() map[string]float64 {
	return map[string]float64{
		"kernel_util": u.KernelUtil,
		"copy_util":   u.CopyUtil,
		"overlap":     u.Overlap,
	}
}

// addUtil appends a figure row carrying the utilization columns.
func addUtil(t *stats.Table, label string, sec, seq float64, u Util) {
	t.Add(stats.Row{Label: label, Value: sec, Speedup: seq / sec, Extra: u.Extra()})
}
