package bench

import (
	"fmt"

	"streamgpu/internal/dedup"
	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
	"streamgpu/internal/lzss"
	"streamgpu/internal/sha1x"
	"streamgpu/internal/stats"
	"streamgpu/internal/workload"
)

// DedupPrep is the per-dataset precomputation shared by every Fig. 5
// configuration: the batches with their Rabin boundaries, per-block SHA-1
// hashes, LZSS match arrays (for the fast GPU kernel), and the
// stream-order dedup outcome (unique/written byte counts per batch, which
// drive the CPU-side costs).
type DedupPrep struct {
	Name    string
	Size    int64
	Batches []*dedupBatch
}

// dedupBatch carries one batch's precomputed state.
type dedupBatch struct {
	data     []byte
	startPos []int32
	spBytes  []byte // startPos serialized for the device
	matches  *lzss.Matches
	blocks   int
	// Stream-order dedup outcome.
	uniqueBlocks int
	uniqueBytes  int64 // raw bytes of first-seen blocks
	writtenBytes int64 // archive bytes for this batch
}

// NewDedupPrep fragments, fingerprints and match-precomputes one dataset.
// batchBytes scales the paper's 1 MB fragmentation with the dataset (pass 0
// for the full 1 MB); reduced-scale runs shrink batches proportionally so
// the batch *count* — which drives pipeline parallelism — stays realistic.
func NewDedupPrep(spec workload.Spec, batchBytes int) *DedupPrep {
	if batchBytes <= 0 {
		batchBytes = dedup.DefaultBatchSize
	}
	data := workload.Generate(spec)
	pr := &DedupPrep{Name: spec.Kind.String(), Size: int64(len(data))}
	seen := make(map[[sha1x.Size]byte]bool)
	dedup.Fragment(data, batchBytes, func(b *dedup.Batch) {
		b.HashBlocks()
		db := &dedupBatch{
			data:     b.Data,
			startPos: b.StartPos,
			blocks:   b.NBlocks(),
			matches:  lzss.Precompute(b.Data, b.StartPos),
		}
		db.spBytes = make([]byte, len(b.StartPos)*4)
		sha1x.PutStartPos(db.spBytes, b.StartPos)
		for k := 0; k < b.NBlocks(); k++ {
			lo, hi := b.Block(k)
			if seen[b.Hashes[k]] {
				db.writtenBytes += 2 // a dup record
				continue
			}
			seen[b.Hashes[k]] = true
			db.uniqueBlocks++
			db.uniqueBytes += int64(hi - lo)
			comp := lzss.EncodeFromMatches(b.Data, lo, hi, db.matches.Len, db.matches.Off)
			w := len(comp)
			if w >= hi-lo {
				w = hi - lo // stored raw
			}
			db.writtenBytes += int64(w) + 4
		}
		pr.Batches = append(pr.Batches, db)
	})
	return pr
}

// DedupVariant selects one Fig. 5 configuration.
type DedupVariant struct {
	Label   string
	API     API // "" = CPU only
	Batched bool
	Spaces  int // memory spaces (streams) per device
	GPUs    int
}

// Fig5Variants is the paper's configuration set.
func Fig5Variants() []DedupVariant {
	v := []DedupVariant{{Label: "SPar (CPU, 19 replicas)"}}
	for _, api := range []API{CUDA, OpenCL} {
		v = append(v, DedupVariant{Label: fmt.Sprintf("SPar+%s no batch", api), API: api, Spaces: 1, GPUs: 1})
	}
	for _, api := range []API{CUDA, OpenCL} {
		v = append(v, DedupVariant{Label: fmt.Sprintf("SPar+%s batch", api), API: api, Batched: true, Spaces: 1, GPUs: 1})
	}
	for _, api := range []API{CUDA, OpenCL} {
		v = append(v, DedupVariant{Label: fmt.Sprintf("SPar+%s batch 2x mem", api), API: api, Batched: true, Spaces: 2, GPUs: 1})
	}
	for _, api := range []API{CUDA, OpenCL} {
		v = append(v, DedupVariant{Label: fmt.Sprintf("SPar+%s batch 2 GPUs", api), API: api, Batched: true, Spaces: 1, GPUs: 2})
	}
	for _, api := range []API{CUDA, OpenCL} {
		v = append(v, DedupVariant{Label: fmt.Sprintf("SPar+%s batch 2x mem 2 GPUs", api), API: api, Batched: true, Spaces: 2, GPUs: 2})
	}
	return v
}

// Fig5 regenerates the Dedup throughput figure for one dataset.
func Fig5(dp *DedupPrep, cal Calibration) *stats.Table {
	t := &stats.Table{
		Title: fmt.Sprintf("Fig. 5 — Dedup throughput, dataset %s (%.1f MB)", dp.Name, float64(dp.Size)/1e6),
		Unit:  "MB/s",
	}
	for _, v := range Fig5Variants() {
		var end des.Time
		if v.API == "" {
			end = dp.RunCPU(cal, 19)
		} else {
			end = dp.RunGPU(cal, v)
		}
		mbps := float64(dp.Size) / 1e6 / end.Seconds()
		t.Add(stats.Row{Label: v.Label, Value: mbps})
	}
	return t
}

// RunCPU models the CPU-only SPar Dedup: fragment (serial) → replicated
// hash+dedup+compress (19 replicas on 17 core-equivalents) → ordered write.
func (dp *DedupPrep) RunCPU(cal Calibration, workers int) des.Time {
	sim := des.New()
	cores := des.NewResource(sim, "cores", cal.EffectiveCores)
	in := des.NewQueue[*dedupBatch](sim, "batches", 512)
	out := des.NewQueue[*dedupBatch](sim, "done", 512)

	sim.Spawn("fragment", func(p *des.Proc) {
		for _, b := range dp.Batches {
			p.Wait(des.Duration(float64(len(b.data)) * cal.RabinNsPerByte))
			in.Put(p, b)
		}
		in.Close()
	})
	for w := 0; w < workers; w++ {
		sim.Spawn(fmt.Sprintf("worker%d", w), func(p *des.Proc) {
			for {
				b, ok := in.Get(p)
				if !ok {
					return
				}
				work := float64(len(b.data))*cal.SHA1NsPerByte +
					float64(b.blocks)*cal.DupCheckNsPerBlock +
					float64(b.uniqueBytes)*cal.LZSSCPUNsPerByte
				cores.Acquire(p, 1)
				p.Wait(des.Duration(work) + cal.overhead(SPar))
				cores.Release(p, 1)
				out.Put(p, b)
			}
		})
	}
	sim.Spawn("writer", func(p *des.Proc) {
		for range dp.Batches {
			b, ok := out.Get(p)
			if !ok {
				return
			}
			p.Wait(des.Duration(float64(b.writtenBytes) * cal.WriteNsPerByte))
		}
	})
	end, err := sim.Run()
	if err != nil {
		panic(err)
	}
	return end
}

// gpuBatchState carries a batch through the 5-stage GPU pipeline (Fig. 3),
// together with its device residency.
type gpuBatchState struct {
	b     *dedupBatch
	q     *gq
	dev   int
	dData *dbuf // batch bytes on device (reused by stage 4)
	dSp   *dbuf
	wait  func(*des.Proc)
}

// RunGPU models the 5-stage GPU Dedup of §IV-B: (1) fragment on CPU,
// (2) SHA-1 on GPU (one replica per device, `Spaces` streams each),
// (3) duplicate check on CPU, (4) LZSS FindMatch on GPU reusing the
// device-resident batch, (5) ordered encode+write on CPU.
//
// Dedup's host buffers are realloc-managed and therefore pageable for both
// APIs (§V-B). Under CUDA, "asynchronous" copies on pageable memory block
// the issuing stage and exclude kernel overlap, so extra memory spaces buy
// nothing; under OpenCL the runtime stages them (slower but still
// asynchronous), so the 2×-memory-space optimization pays off.
func (dp *DedupPrep) RunGPU(cal Calibration, v DedupVariant) des.Time {
	sim := des.New()
	// The Fig. 5 harness runs uninstrumented; GPU Dedup telemetry lives on
	// the real pipeline in internal/dedup (cmd/dedup -metrics-addr).
	devs := newDevices(sim, v.GPUs, nil)
	a := newAPICtx(v.API, sim, devs)
	// Dedup's host buffers are realloc-managed and therefore pageable for
	// both APIs (§V-B); what differs is that CUDA's MemcpyAsync degrades to
	// synchronous on them while OpenCL stays asynchronous.
	hostBuf := func(n int64) *gpu.HostBuf { return gpu.NewHostBuf(n) }

	in := des.NewQueue[*dedupBatch](sim, "batches", 8)
	hashed := des.NewQueue[*gpuBatchState](sim, "hashed", 8)
	checked := des.NewQueue[*gpuBatchState](sim, "checked", 8)
	compressed := des.NewQueue[*gpuBatchState](sim, "compressed", 8)

	// Stage 1: fragmentation on CPU.
	sim.Spawn("fragment", func(p *des.Proc) {
		for _, b := range dp.Batches {
			p.Wait(des.Duration(float64(len(b.data)) * cal.RabinNsPerByte))
			in.Put(p, b)
		}
		in.Close()
	})

	// Stage 2: SHA-1 on GPU, one worker per device with `Spaces` streams.
	var s2done int
	for g := 0; g < v.GPUs; g++ {
		g := g
		sim.Spawn(fmt.Sprintf("sha1-gpu%d", g), func(p *des.Proc) {
			qs := make([]*gq, v.Spaces)
			for s := range qs {
				qs[s] = a.queue(p, g)
			}
			item := 0
			for {
				b, ok := in.Get(p)
				if !ok {
					break
				}
				q := qs[item%v.Spaces]
				item++
				st := &gpuBatchState{b: b, q: q, dev: g}
				st.dData = a.malloc(p, g, int64(len(b.data)))
				st.dSp = a.malloc(p, g, int64(len(b.spBytes)))
				dOut := a.malloc(p, g, int64(b.blocks*sha1x.Size))
				hIn := hostBuf(int64(len(b.data)))
				copy(hIn.Data, b.data)
				hSp := hostBuf(int64(len(b.spBytes)))
				copy(hSp.Data, b.spBytes)
				hHash := hostBuf(int64(b.blocks * sha1x.Size))
				q.copyH2D(p, st.dData, hIn, int64(len(b.data)))
				q.copyH2D(p, st.dSp, hSp, int64(len(b.spBytes)))
				q.launch(p, sha1x.Kernel, gpu.Grid1D(b.blocks, 128),
					st.dData.raw, st.dSp.raw, b.blocks, len(b.data), dOut.raw)
				q.copyD2H(p, hHash, dOut, int64(b.blocks*sha1x.Size))
				st.wait = q.record(p)
				hashed.Put(p, st)
			}
			s2done++
			if s2done == v.GPUs {
				hashed.Close()
			}
		})
	}

	// Stage 3: duplicate check on CPU (serial).
	sim.Spawn("dupcheck", func(p *des.Proc) {
		for {
			st, ok := hashed.Get(p)
			if !ok {
				checked.Close()
				return
			}
			st.wait(p) // hashes must be on the host
			p.Wait(des.Duration(float64(st.b.blocks) * cal.DupCheckNsPerBlock))
			checked.Put(p, st)
		}
	})

	// Stage 4: LZSS FindMatch on GPU, reusing the device-resident batch.
	sim.Spawn("compress", func(p *des.Proc) {
		spec := lzss.FastKernel()
		for {
			st, ok := checked.Get(p)
			if !ok {
				compressed.Close()
				return
			}
			b := st.b
			n := len(b.data)
			if v.Batched {
				dMl := a.malloc(p, st.dev, int64(n*4))
				dMo := a.malloc(p, st.dev, int64(n*4))
				hMl := hostBuf(int64(n * 4))
				hMo := hostBuf(int64(n * 4))
				st.q.launch(p, spec, gpu.Grid1D(n, 128),
					st.dData.raw, n, st.dSp.raw, b.blocks, dMl.raw, dMo.raw, b.matches)
				st.q.copyD2H(p, hMl, dMl, int64(n*4))
				st.q.copyD2H(p, hMo, dMo, int64(n*4))
			} else {
				// The pre-optimization version: one kernel (and one pair
				// of transfers) per block.
				for k := 0; k < b.blocks; k++ {
					lo := int(b.startPos[k])
					hi := n
					if k+1 < b.blocks {
						hi = int(b.startPos[k+1])
					}
					bl := hi - lo
					dMl := a.malloc(p, st.dev, int64(bl*4))
					dMo := a.malloc(p, st.dev, int64(bl*4))
					hMl := hostBuf(int64(bl * 4))
					hMo := hostBuf(int64(bl * 4))
					blockMatches := &lzss.Matches{
						Len: b.matches.Len[lo:hi],
						Off: b.matches.Off[lo:hi],
					}
					st.q.launch(p, spec, gpu.Grid1D(bl, 128),
						st.dData.raw, bl, st.dSp.raw, 1, dMl.raw, dMo.raw, blockMatches)
					st.q.copyD2H(p, hMl, dMl, int64(bl*4))
					st.q.copyD2H(p, hMo, dMo, int64(bl*4))
					st.wait = st.q.record(p)
					st.wait(p)
					dMl.raw.Free()
					dMo.raw.Free()
				}
			}
			st.wait = st.q.record(p)
			compressed.Put(p, st)
		}
	})

	// Stage 5: ordered encode + write on CPU.
	sim.Spawn("writer", func(p *des.Proc) {
		for {
			st, ok := compressed.Get(p)
			if !ok {
				return
			}
			st.wait(p) // match arrays must be on the host
			b := st.b
			p.Wait(des.Duration(float64(b.uniqueBytes)*cal.EncodeNsPerByte +
				float64(b.writtenBytes)*cal.WriteNsPerByte))
			st.dData.raw.Free()
			st.dSp.raw.Free()
		}
	})

	end, err := sim.Run()
	if err != nil {
		panic(err)
	}
	return end
}
