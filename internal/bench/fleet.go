package bench

import (
	"bytes"
	"fmt"

	"streamgpu/internal/dedup"
	"streamgpu/internal/fault"
	"streamgpu/internal/gpu"
	"streamgpu/internal/health"
	"streamgpu/internal/stats"
	"streamgpu/internal/workload"
)

// FigFleet compares health-aware (score-weighted) placement against blind
// sequence-modulo routing on a heterogeneous fleet that degrades mid-run:
// one device starts injecting heavy faults halfway through the stream. Three
// rows anchor the comparison — the same fleet with no degradation (the
// ceiling), blind routing under degradation (keeps feeding the sick device
// until quarantine reroutes its share to the CPU), and health-aware
// placement under degradation (sheds the sick device's share across the
// healthy pool and keeps it on probation via probe batches).
//
// Throughput uses a deterministic lane model over the serving-path
// Processor: every batch lands on one lane (a device, measured in virtual
// seconds by its own simulation, or the CPU fallback at CPUSecondsPerMB),
// lanes run concurrently in the real pipeline, so makespan is the busiest
// lane and MB/s = bytes / makespan. Archives are asserted byte-identical
// across all three modes and against the sequential reference — placement
// must never change output bytes, only where the work ran.

// FleetConfig parameterizes FigFleet.
type FleetConfig struct {
	// Fleet is the device pool (default: the paper's Titan XP ×4).
	Fleet []gpu.DeviceSpec
	// Size is the dataset size in bytes (default 1 MiB of Linux-like data).
	Size int
	// BatchBytes is the fragmentation size (default 32 KiB, so the run has
	// enough batches for the scoreboard to act mid-stream).
	BatchBytes int
	// DeratedDevice injects faults into this device for the second half of
	// the stream (default 1).
	DeratedDevice int
	// Seed drives the workload and the fault schedules.
	Seed int64
}

func (c FleetConfig) fleet() []gpu.DeviceSpec {
	if len(c.Fleet) > 0 {
		return c.Fleet
	}
	fl, err := gpu.ParseFleet("titanxp*4")
	if err != nil {
		panic(err)
	}
	return fl
}

func (c FleetConfig) size() int {
	if c.Size <= 0 {
		return 4 << 20 // 128 batches: enough post-derate traffic to see quarantine, probes and rerouting
	}
	return c.Size
}

func (c FleetConfig) batchBytes() int {
	if c.BatchBytes <= 0 {
		return 32 << 10
	}
	return c.BatchBytes
}

func (c FleetConfig) seed() int64 {
	if c.Seed == 0 {
		return 42
	}
	return c.Seed
}

// CPUSecondsPerMB is the fallback lane's cost model: the measured-shape cost
// of hashing + compressing one megabyte on one host core (§IV-B's CPU
// stages), kept deliberately pessimistic against the device lanes so the
// figure shows what rerouting to the host actually costs a loaded server.
const CPUSecondsPerMB = 0.040

// FleetRow is one placement mode's outcome.
type FleetRow struct {
	Label       string
	MBps        float64
	Quarantines int
	Readmits    int
	Rerouted    int // batches that fell back to the CPU lane
	Probes      int // probe batches sent to quarantined devices
	Batches     int
	Archive     []byte
}

// FigFleetRows runs the three placement modes — blind on the healthy fleet
// (the ceiling), blind under mid-run derating, and health-aware under the
// same derating — and asserts every archive is byte-identical to the
// sequential reference before returning. A corrupted run must never render
// as a throughput number.
func FigFleetRows(cfg FleetConfig) []FleetRow {
	input := workload.Generate(workload.Spec{Kind: workload.Linux, Size: cfg.size(), Seed: cfg.seed()})
	var ref bytes.Buffer
	if _, err := dedup.CompressSeq(input, &ref, dedup.Options{BatchSize: cfg.batchBytes()}); err != nil {
		panic(err)
	}
	rows := []FleetRow{
		runFleetMode(cfg, input, "blind, healthy fleet (ceiling)", true, false),
		runFleetMode(cfg, input, "blind, gpu1 derated mid-run", true, true),
		runFleetMode(cfg, input, "health-aware, gpu1 derated mid-run", false, true),
	}
	for _, r := range rows {
		if !bytes.Equal(r.Archive, ref.Bytes()) {
			panic(fmt.Sprintf("bench: %q archive differs from the sequential reference", r.Label))
		}
	}
	return rows
}

// FigFleet renders the placement comparison table.
func FigFleet(cfg FleetConfig) *stats.Table {
	rows := FigFleetRows(cfg)
	t := &stats.Table{
		Title: fmt.Sprintf("Fig. 7 — placement on a degraded %d-device fleet (%.1f MB, derate at half-stream)",
			len(cfg.fleet()), float64(cfg.size())/1e6),
		Unit: "MB/s",
	}
	base := rows[1].MBps // speedups vs the blind degraded row
	for _, r := range rows {
		t.Add(stats.Row{
			Label:   fmt.Sprintf("%s [quar=%d readm=%d]", r.Label, r.Quarantines, r.Readmits),
			Value:   r.MBps,
			Speedup: r.MBps / base,
			Extra: map[string]float64{
				"cpu_fallback": float64(r.Rerouted) / float64(r.Batches),
				"probes":       float64(r.Probes) / float64(r.Batches),
			},
		})
	}
	return t
}

// runFleetMode streams the input through one serving-path Processor under
// one placement mode and accounts every batch to its lane.
func runFleetMode(cfg FleetConfig, input []byte, label string, blind, derate bool) FleetRow {
	fleet := cfg.fleet()
	batchBytes := cfg.batchBytes()
	totalBatches := (len(input) + batchBytes - 1) / batchBytes
	derateFrom := totalBatches / 2

	sb := health.New(health.Config{
		Devices: len(fleet), Window: 8, MinSamples: 4, Threshold: 0.5,
		ProbeEvery: 4, ReadmitAfter: 2,
	})
	for i, spec := range fleet {
		sb.SetBaseline(i, spec.ServiceSecondsHint(batchBytes)/float64(batchBytes))
	}

	// The processor runs batches strictly in sequence, so a shared progress
	// counter gives a deterministic "mid-run" boundary for the derate.
	processed := 0
	sick := cfg.DeratedDevice
	if sick <= 0 {
		sick = 1
	}
	opt := dedup.GPUOptions{
		Options:        dedup.Options{BatchSize: batchBytes},
		MaxRetries:     1,
		Fleet:          fleet,
		Health:         sb,
		BlindPlacement: blind,
		FaultsFor: func(dev int) fault.Config {
			if !derate || dev != sick || processed < derateFrom {
				return fault.Config{}
			}
			return fault.Config{Seed: cfg.seed(), TransferRate: 0.9, KernelRate: 0.9}
		},
	}

	lanes := make([]float64, len(fleet))
	var cpuSeconds float64
	var probes int
	opt.Placed = func(dev int, probe bool, virtSec float64) {
		if probe {
			probes++
		}
		if dev < 0 {
			cpuSeconds += float64(batchBytes) / 1e6 * CPUSecondsPerMB
			return
		}
		lanes[dev] += virtSec
	}

	p := dedup.NewProcessor(opt, true)
	var arch bytes.Buffer
	dw := dedup.NewWriter(&arch)
	store := dedup.NewStore()
	var runErr error
	dedup.Fragment(input, batchBytes, func(b *dedup.Batch) {
		p.Process(b, store)
		processed++
		if err := b.WriteBlocks(dw); err != nil && runErr == nil {
			runErr = err
		}
	})
	if runErr == nil {
		runErr = dw.Close()
	}
	if runErr != nil {
		panic(fmt.Sprintf("bench: fleet mode %q: %v", label, runErr))
	}

	makespan := cpuSeconds
	for _, l := range lanes {
		if l > makespan {
			makespan = l
		}
	}
	var quarantines, readmits int
	for _, st := range sb.Snapshot() {
		quarantines += int(st.Quarantines)
		readmits += int(st.Readmits)
	}
	return FleetRow{
		Label:       label,
		MBps:        float64(len(input)) / 1e6 / makespan,
		Quarantines: quarantines,
		Readmits:    readmits,
		Rerouted:    p.Report().Rerouted,
		Probes:      probes,
		Batches:     processed,
		Archive:     arch.Bytes(),
	}
}
