package bench

import (
	"fmt"

	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
	"streamgpu/internal/gpu/cuda"
	"streamgpu/internal/gpu/opencl"
	"streamgpu/internal/stats"
)

// API selects the GPU programming model flavour. Both facades sit on the
// same device model; what differs is the host-side semantics each API
// imposes (thread-safe kernel objects vs not, pinned-memory rules), which
// is why the paper — and this harness — measure them within noise of each
// other.
type API string

// The two GPU programming models compared by the paper.
const (
	CUDA   API = "CUDA"
	OpenCL API = "OpenCL"
)

// gq is a uniform handle over a cuda.Stream or an opencl.CommandQueue.
type gq struct {
	api API
	rt  *cuda.Runtime
	cst *cuda.Stream
	ctx *opencl.Context
	oq  *opencl.CommandQueue
	dev int
}

// apiCtx wraps one facade instance over a device set.
type apiCtx struct {
	api  API
	rt   *cuda.Runtime
	ctx  *opencl.Context
	devs []*gpu.Device
}

func newAPICtx(api API, sim *des.Sim, devs []*gpu.Device) *apiCtx {
	a := &apiCtx{api: api, devs: devs}
	// The bench harness always passes at least one device, so a no-devices
	// error here is a programming bug, not a runtime condition.
	var err error
	if api == CUDA {
		a.rt, err = cuda.NewRuntime(sim, devs...)
	} else {
		a.ctx, err = opencl.CreateContext(sim, devs...)
	}
	if err != nil {
		panic(err)
	}
	return a
}

// queue creates a stream/command-queue on device dev.
func (a *apiCtx) queue(p *des.Proc, dev int) *gq {
	q := &gq{api: a.api, rt: a.rt, ctx: a.ctx, dev: dev}
	if a.api == CUDA {
		a.rt.SetDevice(p, dev)
		q.cst = a.rt.StreamCreate(p)
	} else {
		q.oq = a.ctx.CreateCommandQueue(dev)
	}
	return q
}

// dbuf is a uniform device-buffer handle over both APIs.
type dbuf struct {
	raw *gpu.Buf
	ob  *opencl.Buffer
}

// malloc allocates device memory on device dev.
func (a *apiCtx) malloc(p *des.Proc, dev int, n int64) *dbuf {
	if a.api == CUDA {
		a.rt.SetDevice(p, dev)
		b, err := a.rt.Malloc(p, n)
		if err != nil {
			panic(err)
		}
		return &dbuf{raw: b}
	}
	b, err := a.ctx.CreateBuffer(dev, n)
	if err != nil {
		panic(err)
	}
	return &dbuf{raw: b.Raw(), ob: b}
}

// launch enqueues spec<<<g>>>(args...). The OpenCL path allocates a fresh
// kernel object per enqueue, as §IV-A requires for thread safety.
func (q *gq) launch(p *des.Proc, spec *gpu.KernelSpec, g gpu.Grid, args ...any) {
	if q.api == CUDA {
		q.rt.SetDevice(p, q.dev)
		q.rt.LaunchKernel(p, spec, g, q.cst, args...)
		return
	}
	k := opencl.CreateKernel(spec, len(args))
	for i, a := range args {
		k.SetArg(p, i, a)
	}
	bx, by := g.Block.X, g.Block.Y
	if by <= 1 {
		q.oq.EnqueueNDRangeKernel(p, k, g.Threads(), g.ThreadsPerBlock())
	} else {
		gx := g.Grid.X * bx
		gy := by
		if g.Grid.Y > 0 {
			gy = g.Grid.Y * by
		}
		q.oq.EnqueueNDRangeKernel2D(p, k, gx, gy, bx, by)
	}
}

// copyD2H enqueues a device→host copy; pageable host memory makes the call
// blocking under both APIs.
func (q *gq) copyD2H(p *des.Proc, dst *gpu.HostBuf, dev *dbuf, n int64) {
	if q.api == CUDA {
		q.rt.SetDevice(p, q.dev)
		q.rt.MemcpyAsync(p, dev.raw, 0, dst, 0, n, cuda.MemcpyDeviceToHost, q.cst)
		return
	}
	q.oq.EnqueueReadBuffer(p, dst, 0, dev.ob, 0, n, false)
}

// copyH2D enqueues a host→device copy with the same blocking semantics.
func (q *gq) copyH2D(p *des.Proc, dev *dbuf, src *gpu.HostBuf, n int64) {
	if q.api == CUDA {
		q.rt.SetDevice(p, q.dev)
		q.rt.MemcpyAsync(p, dev.raw, 0, src, 0, n, cuda.MemcpyHostToDevice, q.cst)
		return
	}
	q.oq.EnqueueWriteBuffer(p, dev.ob, 0, src, 0, n, false)
}

// record returns a wait-function firing when all work enqueued so far has
// completed (cudaEventRecord / clEnqueueMarker).
func (q *gq) record(p *des.Proc) func(*des.Proc) {
	if q.api == CUDA {
		e := q.rt.EventRecord(p, q.cst)
		return func(p *des.Proc) {
			if err := q.rt.EventSynchronize(p, e); err != nil {
				panic(err)
			}
		}
	}
	e := q.oq.EnqueueMarker(p)
	return func(p *des.Proc) { opencl.WaitForEvents(p, e) }
}

func (q *gq) finish(p *des.Proc) {
	if q.api == CUDA {
		if err := q.rt.StreamSynchronize(p, q.cst); err != nil {
			panic(err)
		}
		return
	}
	q.oq.Finish(p)
}

// Fig1 regenerates the Mandelbrot optimization ladder: sequential, naive
// one-kernel-per-row, the 2-D grid misstep, 32-row batches, overlapped
// transfers with 2 and 4 memory spaces, and the two-GPU configurations.
// Every GPU row carries the utilization columns (kernel_util, copy_util,
// overlap), so the table shows *why* each optimization step pays: batching
// raises kernel utilization, extra memory spaces turn copy time into
// overlap.
func (pr *Prep) Fig1() *stats.Table {
	t := &stats.Table{
		Title: "Fig. 1 — Optimizing Mandelbrot Streaming (exec time, speedup vs sequential)",
		Unit:  "s",
	}
	seq := pr.SeqTime().Seconds()
	t.Add(stats.Row{Label: "Sequential", Value: seq, Speedup: 1})
	for _, api := range []API{CUDA, OpenCL} {
		end, u := pr.RunRowPerKernelUtil(api, false)
		addUtil(t, string(api)+" naive", end.Seconds(), seq, u)
	}
	for _, api := range []API{CUDA, OpenCL} {
		end, u := pr.RunRowPerKernelUtil(api, true)
		addUtil(t, string(api)+" 2D grid", end.Seconds(), seq, u)
	}
	for _, api := range []API{CUDA, OpenCL} {
		end, u := pr.RunBatchedUtil(api, 1, 1)
		addUtil(t, fmt.Sprintf("%s batch %d", api, pr.Cfg.BatchRows), end.Seconds(), seq, u)
	}
	for _, api := range []API{CUDA, OpenCL} {
		end, u := pr.RunBatchedUtil(api, 2, 1)
		addUtil(t, string(api)+" 2x mem spaces", end.Seconds(), seq, u)
	}
	for _, api := range []API{CUDA, OpenCL} {
		end, u := pr.RunBatchedUtil(api, 4, 1)
		addUtil(t, string(api)+" 4x mem spaces", end.Seconds(), seq, u)
	}
	for _, api := range []API{CUDA, OpenCL} {
		end, u := pr.RunBatchedUtil(api, 2, 2)
		addUtil(t, string(api)+" 2 GPUs 2x mem", end.Seconds(), seq, u)
	}
	for _, api := range []API{CUDA, OpenCL} {
		end, u := pr.RunBatchedUtil(api, 4, 2)
		addUtil(t, string(api)+" 2 GPUs 4x mem", end.Seconds(), seq, u)
	}
	return t
}

// RunRowPerKernel models the naive offload: a single CPU thread launches
// one kernel per image row and synchronously copies the row back (pageable
// memory — plain malloc'd buffers). twoD selects the (32,32)-block
// configuration.
func (pr *Prep) RunRowPerKernel(api API, twoD bool) des.Time {
	end, _ := pr.RunRowPerKernelUtil(api, twoD)
	return end
}

// RunRowPerKernelUtil is RunRowPerKernel returning the device utilization
// alongside the makespan.
func (pr *Prep) RunRowPerKernelUtil(api API, twoD bool) (des.Time, Util) {
	p := pr.Cfg.Params
	sim := des.New()
	devs := newDevices(sim, 1, pr.Cfg.Telemetry)
	a := newAPICtx(api, sim, devs)
	spec := pr.Cache.RowKernel()
	grid := gpu.Grid1D(p.Dim, 128)
	if twoD {
		spec = pr.Cache.Row2DKernel()
		grid = gpu.Grid{Grid: gpu.Dim3{X: (p.Dim + 31) / 32}, Block: gpu.Dim3{X: 32, Y: 32}}
	}
	sim.Spawn("host", func(proc *des.Proc) {
		q := a.queue(proc, 0)
		dImg := a.malloc(proc, 0, int64(p.Dim))
		hImg := gpu.NewHostBuf(int64(p.Dim)) // pageable: copies block the host
		for i := 0; i < p.Dim; i++ {
			q.launch(proc, spec, grid, i, dImg.raw, pr.iterCycles())
			q.copyD2H(proc, hImg, dImg, int64(p.Dim))
			q.finish(proc)
			proc.Wait(pr.displayCost(1))
		}
	})
	end, err := sim.Run()
	if err != nil {
		panic(err)
	}
	return end, utilOf(devs, end)
}

// RunBatched models the batched variants: nBufs memory spaces round-robin
// over nGPUs devices, one stream per memory space. With a single buffer the
// flow is fully synchronous on pageable memory (the pre-overlap version);
// with more buffers transfers are asynchronous on page-locked memory and
// overlap with the next batch's compute, the §IV-A optimization.
func (pr *Prep) RunBatched(api API, nBufs, nGPUs int) des.Time {
	end, _ := pr.RunBatchedUtil(api, nBufs, nGPUs)
	return end
}

// RunBatchedUtil is RunBatched returning the device utilization alongside
// the makespan.
func (pr *Prep) RunBatchedUtil(api API, nBufs, nGPUs int) (des.Time, Util) {
	p := pr.Cfg.Params
	rows := pr.Cfg.BatchRows
	nBatches := (p.Dim + rows - 1) / rows
	batchBytes := int64(rows * p.Dim)
	pinned := nBufs > 1
	spec := pr.Cache.BatchKernel()

	sim := des.New()
	devs := newDevices(sim, nGPUs, pr.Cfg.Telemetry)
	a := newAPICtx(api, sim, devs)
	sim.Spawn("host", func(proc *des.Proc) {
		type space struct {
			q       *gq
			dImg    *dbuf
			hImg    *gpu.HostBuf
			pending func(*des.Proc)
			rows    int
		}
		spaces := make([]*space, nBufs)
		for s := range spaces {
			dev := s % nGPUs
			sp := &space{q: a.queue(proc, dev), dImg: a.malloc(proc, dev, batchBytes)}
			if pinned {
				sp.hImg = gpu.NewPinnedBuf(batchBytes)
			} else {
				sp.hImg = gpu.NewHostBuf(batchBytes)
			}
			spaces[s] = sp
		}
		retire := func(sp *space) {
			if sp.pending == nil {
				return
			}
			sp.pending(proc)
			sp.pending = nil
			proc.Wait(pr.displayCost(sp.rows))
		}
		for b := 0; b < nBatches; b++ {
			sp := spaces[b%nBufs]
			retire(sp) // free the memory space before reuse
			r := rows
			if (b+1)*rows > p.Dim {
				r = p.Dim - b*rows
			}
			sp.rows = r
			sp.q.launch(proc, spec, gpu.Grid1D(r*p.Dim, 128), b, rows, sp.dImg.raw, pr.iterCycles())
			sp.q.copyD2H(proc, sp.hImg, sp.dImg, int64(r*p.Dim))
			if pinned {
				sp.pending = sp.q.record(proc)
			} else {
				// The pre-overlap version reads back synchronously
				// (cudaMemcpy / CL_TRUE) and displays inline.
				sp.q.finish(proc)
				proc.Wait(pr.displayCost(r))
			}
		}
		for _, sp := range spaces {
			retire(sp)
		}
	})
	end, err := sim.Run()
	if err != nil {
		panic(err)
	}
	return end, utilOf(devs, end)
}
