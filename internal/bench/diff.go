package bench

import (
	"fmt"
	"sort"
)

// DiffOptions configures a baseline comparison.
type DiffOptions struct {
	// MaxRegress is the tolerated fractional throughput drop after
	// calibration scaling (default 0.15: fail when a fresh value falls more
	// than 15% below the baseline).
	MaxRegress float64
	// AllocSlack is the tolerated absolute allocs/op increase (default
	// 0.25, absorbing counter jitter from the runtime itself). Entries whose
	// baseline or fresh count is negative are skipped (not measured).
	AllocSlack float64
}

func (o DiffOptions) maxRegress() float64 {
	if o.MaxRegress <= 0 {
		return 0.15
	}
	return o.MaxRegress
}

func (o DiffOptions) allocSlack() float64 {
	if o.AllocSlack <= 0 {
		return 0.25
	}
	return o.AllocSlack
}

// DiffEntry is one compared measurement.
type DiffEntry struct {
	Name string
	Unit string
	// Base is the baseline value scaled by the calibration ratio — the
	// throughput the baseline machine's numbers predict for this machine.
	Base, Fresh float64
	// Ratio is Fresh/Base (>1 is faster than the scaled baseline).
	Ratio                 float64
	BaseAllocs, NewAllocs float64
	Failed                bool
	Reason                string
}

// Diff compares a fresh report against a committed baseline. Throughput
// thresholds are scaled by the Calib ratio so a baseline recorded on
// different hardware stays meaningful: what is compared is each entry's
// value relative to the machine's single-thread SHA-1 speed.
func Diff(base, fresh HostReport, opt DiffOptions) ([]DiffEntry, error) {
	if base.Calib <= 0 || fresh.Calib <= 0 {
		return nil, fmt.Errorf("bench: reports need positive calib scores (base %v, fresh %v)", base.Calib, fresh.Calib)
	}
	scale := fresh.Calib / base.Calib
	baseByName := make(map[string]HostResult, len(base.Results))
	for _, r := range base.Results {
		baseByName[r.Name] = r
	}
	var out []DiffEntry
	for _, fr := range fresh.Results {
		br, ok := baseByName[fr.Name]
		if !ok {
			continue // new measurement: nothing to regress against
		}
		// Dimensionless entries (unit "x", e.g. parallel speedup ratios) are
		// machine-speed-independent: calib scaling would distort them.
		entryScale := scale
		if fr.Unit == "x" {
			entryScale = 1
		}
		e := DiffEntry{
			Name:       fr.Name,
			Unit:       fr.Unit,
			Base:       br.Value * entryScale,
			Fresh:      fr.Value,
			BaseAllocs: br.AllocsPerOp,
			NewAllocs:  fr.AllocsPerOp,
		}
		if e.Base > 0 {
			e.Ratio = e.Fresh / e.Base
		}
		if e.Fresh < e.Base*(1-opt.maxRegress()) {
			e.Failed = true
			e.Reason = fmt.Sprintf("throughput %.2f below %.2f (scaled baseline −%d%%)",
				e.Fresh, e.Base*(1-opt.maxRegress()), int(opt.maxRegress()*100))
		}
		if br.AllocsPerOp >= 0 && fr.AllocsPerOp >= 0 &&
			fr.AllocsPerOp > br.AllocsPerOp+opt.allocSlack() {
			e.Failed = true
			if e.Reason != "" {
				e.Reason += "; "
			}
			e.Reason += fmt.Sprintf("allocs/op %.2f above baseline %.2f", fr.AllocsPerOp, br.AllocsPerOp)
		}
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out, nil
}

// DiffFailures returns the entries that regressed.
func DiffFailures(entries []DiffEntry) []DiffEntry {
	var bad []DiffEntry
	for _, e := range entries {
		if e.Failed {
			bad = append(bad, e)
		}
	}
	return bad
}
