// Package bench is the experiment harness that regenerates the paper's
// evaluation (§V): Fig. 1 (Mandelbrot optimization ladder), Fig. 4
// (Mandelbrot across programming models) and Fig. 5 (Dedup throughput).
//
// Experiments run in *virtual time* on the discrete-event simulator: GPU
// operations are timed by the device model in internal/gpu, CPU stage
// service times are charged from the calibration constants below, and the
// pipeline structures of SPar/FastFlow/TBB are modelled with des processes
// and bounded queues mirroring each runtime's semantics (queue capacities,
// TBB's live-token cap, the 17-core-equivalent host). Kernels execute
// functionally, so every experiment also validates results, not just
// timing. See DESIGN.md §5 for the calibration story and EXPERIMENTS.md
// for measured-vs-paper numbers.
package bench

import (
	"streamgpu/internal/des"
	"streamgpu/internal/gpu"
	"streamgpu/internal/mandel"
	"streamgpu/internal/telemetry"
)

// Calibration fixes the virtual-time cost model. Defaults are calibrated so
// the paper's testbed numbers land in band (i9-7900X + 2× Titan XP).
type Calibration struct {
	// CPUIterNs is the virtual cost of one Mandelbrot iteration on one CPU
	// core. ~1 ns/iter makes the paper-scale sequential run ≈ 400 s.
	CPUIterNs float64
	// GPUIterCycles is the device cost of one Mandelbrot iteration per
	// thread. Mandelbrot is double precision and consumer Pascal runs FP64
	// at 1/32 rate, hence ~100 cycles (≈3 FP64 ops × 32).
	GPUIterCycles int64
	// WorkScale maps the physically computed iterations onto the paper's
	// niter=200,000: experiments run at Params.Niter and each iteration
	// stands for WorkScale model iterations.
	WorkScale int

	// EffectiveCores models the host: 10 cores / 20 hyperthreads behave
	// like ~17 core-equivalents under full load (the paper's 19 workers
	// reach ≈17× speedup).
	EffectiveCores int

	// Host-side streaming costs.
	EmitNs           float64 // per stream item, source stage
	DisplayNsPerByte float64 // "ShowLine": per displayed pixel byte
	DisplayPerRowNs  float64 // fixed per displayed row
	// Per-item framework overheads (scheduling, queue ops).
	OverheadFFNs   float64
	OverheadSParNs float64
	OverheadTBBNs  float64

	// Dedup per-byte CPU costs (virtual ns/byte) and per-block costs.
	RabinNsPerByte     float64
	SHA1NsPerByte      float64
	LZSSCPUNsPerByte   float64 // CPU FindMatch+encode on unique blocks
	EncodeNsPerByte    float64 // sequential encode from GPU match arrays
	WriteNsPerByte     float64 // archive output
	DupCheckNsPerBlock float64
}

// Default returns the calibrated constants.
func Default() Calibration {
	return Calibration{
		CPUIterNs:          2.0,
		GPUIterCycles:      100,
		WorkScale:          200,
		EffectiveCores:     17,
		EmitNs:             1500,
		DisplayNsPerByte:   0.3,
		DisplayPerRowNs:    1_500_000,
		OverheadFFNs:       300,
		OverheadSParNs:     400,
		OverheadTBBNs:      1200,
		RabinNsPerByte:     0.6,
		SHA1NsPerByte:      2.5,
		LZSSCPUNsPerByte:   200,
		EncodeNsPerByte:    2.0,
		WriteNsPerByte:     0.4,
		DupCheckNsPerBlock: 300,
	}
}

// Config parameterizes a harness run.
type Config struct {
	Cal Calibration
	// Params is the physically computed fractal; with WorkScale it models
	// the paper's 2000×2000 @ 200k configuration.
	Params    mandel.Params
	BatchRows int // rows per GPU batch (the paper's 32)
	// CPUWorkers / GPUWorkers are the stage replication degrees (§V-A:
	// 19 CPU-only, 10 with GPUs).
	CPUWorkers int
	GPUWorkers int
	// Telemetry, when set, is attached to every simulated device the
	// harness creates, so a figure run exposes its GPU engine metrics
	// (transfer bytes/durations, kernel latencies, outstanding-op gauges)
	// over the -metrics-addr endpoint. Durations recorded there are
	// *virtual* seconds. nil disables instrumentation.
	Telemetry *telemetry.Registry
}

// DefaultConfig models the paper's setup at a host-affordable physical
// scale: dim stays at 2000 (row width drives GPU occupancy), niter is
// reduced 200× and WorkScale restores the modelled cost.
func DefaultConfig() Config {
	return Config{
		Cal:        Default(),
		Params:     mandel.Params{Dim: 2000, Niter: 1000, InitA: -2.0, InitB: -1.25, Range: 2.5},
		BatchRows:  32,
		CPUWorkers: 19,
		GPUWorkers: 10,
	}
}

// TestConfig is a much cheaper physical scale for unit tests: the image
// keeps the paper's 2000-pixel rows (row width drives GPU occupancy and the
// fixed per-row costs) but computes only 100 iterations physically, with
// WorkScale restoring the modelled niter = 200,000.
func TestConfig() Config {
	c := DefaultConfig()
	c.Params.Niter = 100
	c.Cal.WorkScale = 2000
	return c
}

// Prep is the shared precomputation for the Mandelbrot experiments: the
// iteration cache (one functional computation of the frame, reused by every
// configuration) and derived workload measures.
type Prep struct {
	Cfg        Config
	Cache      *mandel.IterCache
	TotalIters int64   // physical iterations of the whole frame
	RowIters   []int64 // physical iterations per row
}

// NewPrep computes the shared state.
func NewPrep(cfg Config) *Prep {
	cache, total := mandel.NewIterCache(cfg.Params)
	pr := &Prep{Cfg: cfg, Cache: cache, TotalIters: total}
	p := cfg.Params
	pr.RowIters = make([]int64, p.Dim)
	for i := 0; i < p.Dim; i++ {
		var s int64
		for j := 0; j < p.Dim; j++ {
			k := cache.K[i*p.Dim+j]
			s += int64(k)
			if int(k) < p.Niter {
				s++
			}
		}
		pr.RowIters[i] = s
	}
	return pr
}

// iterCycles is the per-iteration device cost including the work scale.
func (pr *Prep) iterCycles() int64 {
	return pr.Cfg.Cal.GPUIterCycles * int64(pr.Cfg.Cal.WorkScale)
}

// cpuIterNs is the per-iteration CPU cost including the work scale.
func (pr *Prep) cpuIterNs() float64 {
	return pr.Cfg.Cal.CPUIterNs * float64(pr.Cfg.Cal.WorkScale)
}

// SeqTime is the modelled sequential execution time (the 400 s baseline).
func (pr *Prep) SeqTime() des.Duration {
	return des.Duration(float64(pr.TotalIters) * pr.cpuIterNs())
}

// displayCost is the ShowLine cost for rows of dim pixels.
func (pr *Prep) displayCost(rows int) des.Duration {
	c := pr.Cfg.Cal
	bytes := float64(rows * pr.Cfg.Params.Dim)
	return des.Duration(bytes*c.DisplayNsPerByte + float64(rows)*c.DisplayPerRowNs)
}

// newDevices builds n Titan XP models on sim, instrumented with reg when
// non-nil.
func newDevices(sim *des.Sim, n int, reg *telemetry.Registry) []*gpu.Device {
	devs := make([]*gpu.Device, n)
	for i := range devs {
		devs[i] = gpu.NewDevice(sim, gpu.TitanXPSpec(), i)
		devs[i].SetTelemetry(reg)
	}
	return devs
}

// Framework selects a CPU programming model for the pipeline models.
type Framework string

// The three multicore programming models compared by the paper.
const (
	SPar     Framework = "SPar"
	FastFlow Framework = "FastFlow"
	TBB      Framework = "TBB"
)

// overhead returns the per-item scheduling overhead of a framework.
func (c Calibration) overhead(fw Framework) des.Duration {
	switch fw {
	case FastFlow:
		return des.Duration(c.OverheadFFNs)
	case TBB:
		return des.Duration(c.OverheadTBBNs)
	default:
		return des.Duration(c.OverheadSParNs)
	}
}

// tokenCap returns the in-flight item cap: TBB pipelines are throttled by
// max_number_of_live_tokens (§V-A: 2× workers CPU-only, 5× with GPUs);
// SPar/FastFlow are bounded by their queue capacities instead.
func tokenCap(fw Framework, workers int, withGPU bool) int {
	if fw != TBB {
		return 0 // unbounded tokens; queues bound the pipeline
	}
	if withGPU {
		return 5 * workers
	}
	return 2 * workers
}
