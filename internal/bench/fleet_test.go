package bench

import (
	"bytes"
	"testing"
)

// TestFigFleetHealthAwareBeatsBlind is the figure's acceptance gate: on the
// seeded 4-device fleet with gpu1 derated at half-stream, score-weighted
// placement must serve more MB/s than blind sequence-modulo routing, both
// modes must quarantine the sick device, and every mode's archive must be
// byte-identical (FigFleetRows panics otherwise — placement may move work,
// never change bytes).
func TestFigFleetHealthAwareBeatsBlind(t *testing.T) {
	rows := FigFleetRows(FleetConfig{})
	ceiling, blind, aware := rows[0], rows[1], rows[2]

	if aware.MBps <= blind.MBps {
		t.Fatalf("health-aware placement (%.1f MB/s) did not beat blind routing (%.1f MB/s) on the degraded fleet",
			aware.MBps, blind.MBps)
	}
	if ceiling.MBps <= blind.MBps {
		t.Fatalf("degradation did not cost blind routing anything: ceiling %.1f MB/s vs degraded %.1f MB/s",
			ceiling.MBps, blind.MBps)
	}
	if ceiling.Quarantines != 0 || ceiling.Rerouted != 0 {
		t.Fatalf("healthy ceiling run quarantined or rerouted: %+v", ceiling)
	}
	if blind.Quarantines == 0 {
		t.Fatalf("blind routing never quarantined the derated device: %+v", blind)
	}
	if aware.Quarantines == 0 {
		t.Fatalf("health-aware placement never quarantined the derated device: %+v", aware)
	}
	if aware.Probes == 0 {
		t.Fatalf("no probe batches reached the quarantined device under health-aware placement: %+v", aware)
	}
	if aware.Rerouted >= blind.Rerouted && blind.Rerouted > 0 {
		t.Fatalf("health-aware placement fell back to the CPU at least as often as blind routing: %d vs %d",
			aware.Rerouted, blind.Rerouted)
	}
	if !bytes.Equal(ceiling.Archive, aware.Archive) || !bytes.Equal(ceiling.Archive, blind.Archive) {
		t.Fatal("archives differ across placement modes")
	}
}
