package cluster_test

import (
	"fmt"
	"math/rand"
	"testing"

	"streamgpu/internal/cluster"
	"streamgpu/internal/sha1x"
)

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:7070", i+1)
	}
	return out
}

// TestRingDeterministic: the ring layout is a pure function of (seed,
// vnodes, members) — member order must not matter, and every node building
// from the same inputs must agree on every owner.
func TestRingDeterministic(t *testing.T) {
	ms := members(5)
	a := cluster.NewRing(42, 64, ms)
	shuffled := append([]string(nil), ms...)
	rand.New(rand.NewSource(9)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})
	b := cluster.NewRing(42, 64, shuffled)
	for tenant := uint32(0); tenant < 10000; tenant++ {
		if a.OwnerTenant(tenant) != b.OwnerTenant(tenant) {
			t.Fatalf("tenant %d: owner differs across member orderings", tenant)
		}
	}
	var h [sha1x.Size]byte
	for i := 0; i < 1000; i++ {
		h[0], h[1], h[2] = byte(i), byte(i>>8), byte(i*7)
		if a.OwnerHash(h) != b.OwnerHash(h) {
			t.Fatalf("hash %d: owner differs across member orderings", i)
		}
	}
	// A different seed must produce a different placement (sanity that the
	// seed actually participates).
	c := cluster.NewRing(43, 64, ms)
	same := 0
	for tenant := uint32(0); tenant < 1000; tenant++ {
		if a.OwnerTenant(tenant) == c.OwnerTenant(tenant) {
			same++
		}
	}
	if same == 1000 {
		t.Fatal("seed does not affect placement")
	}
}

// TestRingBalance: with the default vnode count no member's tenant share
// may be wildly off the fair share. The bound is loose (vnode placement has
// real variance) but pins that virtual nodes are doing their job.
func TestRingBalance(t *testing.T) {
	const tenants = 20000
	for _, n := range []int{2, 3, 5, 8} {
		r := cluster.NewRing(7, 0, members(n))
		counts := make(map[string]int)
		for tenant := uint32(0); tenant < tenants; tenant++ {
			counts[r.OwnerTenant(tenant)]++
		}
		fair := tenants / n
		for m, c := range counts {
			if c < fair/3 || c > fair*3 {
				t.Errorf("n=%d: member %s owns %d of %d tenants (fair %d)", n, m, c, tenants, fair)
			}
		}
		if len(counts) != n {
			t.Errorf("n=%d: only %d members own tenants", n, len(counts))
		}
	}
}

// TestRingRebalanceProperty is the consistent-hashing contract: adding a
// member only moves keys TO the new member, removing one only moves keys
// FROM it, and the moved fraction stays near 1/n. This is what makes
// membership churn cheap — everything else stays put.
func TestRingRebalanceProperty(t *testing.T) {
	const tenants = 8000
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		n := 2 + rng.Intn(6)
		seed := rng.Int63()
		ms := members(n + 1)
		before := cluster.NewRing(seed, 0, ms[:n])

		// Join: add member ms[n].
		after := cluster.NewRing(seed, 0, ms)
		moved := 0
		for tenant := uint32(0); tenant < tenants; tenant++ {
			ob, oa := before.OwnerTenant(tenant), after.OwnerTenant(tenant)
			if ob == oa {
				continue
			}
			moved++
			if oa != ms[n] {
				t.Fatalf("trial %d: join moved tenant %d from %s to %s (not the joiner)", trial, tenant, ob, oa)
			}
		}
		// Expected fraction 1/(n+1); allow 3x for vnode variance.
		if limit := 3 * tenants / (n + 1); moved > limit {
			t.Errorf("trial %d: join moved %d of %d tenants (expected ~%d, limit %d)",
				trial, moved, tenants, tenants/(n+1), limit)
		}

		// Leave: drop a random original member from the ring.
		gone := ms[rng.Intn(n)]
		var rest []string
		for _, m := range ms[:n] {
			if m != gone {
				rest = append(rest, m)
			}
		}
		shrunk := cluster.NewRing(seed, 0, rest)
		moved = 0
		for tenant := uint32(0); tenant < tenants; tenant++ {
			ob, oa := before.OwnerTenant(tenant), shrunk.OwnerTenant(tenant)
			if ob == oa {
				continue
			}
			moved++
			if ob != gone {
				t.Fatalf("trial %d: leave moved tenant %d owned by %s (not the leaver)", trial, tenant, ob)
			}
		}
		if limit := 3 * tenants / n; moved > limit {
			t.Errorf("trial %d: leave moved %d of %d tenants (limit %d)", trial, moved, tenants, limit)
		}
	}
}
