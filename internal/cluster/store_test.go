package cluster_test

import (
	"bytes"
	"errors"
	"testing"

	"streamgpu/internal/cluster"
	"streamgpu/internal/sha1x"
	"streamgpu/internal/telemetry"
)

// testCluster wires N Stores together in-process: ownership comes from a
// real ring over the store names, and the "network" is a direct call into
// the owner's HandleRPC. fail simulates a severed link from one node.
type testCluster struct {
	stores map[string]*cluster.Store
	ring   *cluster.Ring
	fail   map[string]bool // node whose outbound RPCs error
}

func newTestCluster(t *testing.T, names ...string) *testCluster {
	t.Helper()
	tc := &testCluster{stores: make(map[string]*cluster.Store), fail: make(map[string]bool)}
	tc.ring = cluster.NewRing(3, 0, names)
	for _, name := range names {
		tc.stores[name] = cluster.NewStore(name, telemetry.New())
	}
	for _, name := range names {
		self := name
		tc.stores[name].Bind(
			tc.ring.OwnerHash,
			func(addr string, req []byte) ([]byte, error) {
				if tc.fail[self] {
					return nil, errors.New("link down")
				}
				return tc.stores[addr].HandleRPC(req), nil
			},
		)
	}
	return tc
}

func hashOf(b []byte) [sha1x.Size]byte { return sha1x.Sum20(b) }

// sightings is a test convenience over the dst-slice API.
func sightings(s *cluster.Store, hs [][sha1x.Size]byte) []bool {
	dst := make([]bool, len(hs))
	s.FirstSightings(hs, dst)
	return dst
}

// pickHashes returns count hashes owned by owner according to the ring.
func (tc *testCluster) pickHashes(owner string, count int) [][sha1x.Size]byte {
	var out [][sha1x.Size]byte
	for i := 0; len(out) < count; i++ {
		h := hashOf([]byte{byte(i), byte(i >> 8), byte(i >> 16)})
		if tc.ring.OwnerHash(h) == owner {
			out = append(out, h)
		}
	}
	return out
}

// TestStoreReservation: the first node to query a hash wins the first
// sighting; every later query — from any node, including the first —
// reports it as already seen.
func TestStoreReservation(t *testing.T) {
	tc := newTestCluster(t, "a", "b", "c")
	hs := tc.pickHashes("c", 4)

	first := sightings(tc.stores["a"], hs)
	for i, f := range first {
		if !f {
			t.Fatalf("hash %d: node a should win the first sighting", i)
		}
	}
	for _, name := range []string{"b", "a"} {
		again := sightings(tc.stores[name], hs)
		for i, f := range again {
			if f {
				t.Fatalf("hash %d: node %s saw a hash already reserved", i, name)
			}
		}
	}
	// a re-resolves locally (it cached the answers), but b learned of the
	// reservation over the wire — that is the cluster-wide remote hit.
	if tc.stores["b"].RemoteHits() == 0 {
		t.Fatal("node b's query of a-reserved hashes should count remote hits")
	}
	if tc.stores["a"].RemoteHits() != 0 {
		t.Fatal("node a should resolve its re-query from the local seen set")
	}
}

// TestStoreSelfOwned: hashes a node itself owns never leave the node — the
// reservation is purely local, and other nodes asking later get a dup.
func TestStoreSelfOwned(t *testing.T) {
	tc := newTestCluster(t, "a", "b")
	hs := tc.pickHashes("a", 3)
	tc.fail["a"] = true // a must not need the network for its own hashes
	if first := sightings(tc.stores["a"], hs); !first[0] || !first[1] || !first[2] {
		t.Fatal("self-owned hashes should be first sightings")
	}
	tc.fail["a"] = false
	if first := sightings(tc.stores["b"], hs); first[0] || first[1] || first[2] {
		t.Fatal("b should see a's reservation")
	}
}

// TestStorePublishFetch: compressed bytes published through one node are
// fetchable from another, byte-identical, and land in the fetcher's local
// cache (second fetch works with the network down).
func TestStorePublishFetch(t *testing.T) {
	tc := newTestCluster(t, "a", "b", "c")
	payload := []byte("compressed block body")
	h := hashOf(payload)

	tc.stores["a"].PublishComp(h, payload)
	got, ok := tc.stores["b"].FetchComp(h)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatalf("fetch via b: ok=%v bytes equal=%v", ok, bytes.Equal(got, payload))
	}
	tc.fail["b"] = true
	got, ok = tc.stores["b"].FetchComp(h)
	if !ok || !bytes.Equal(got, payload) {
		t.Fatal("second fetch should be served from b's local cache")
	}
	if _, ok := tc.stores["c"].FetchComp(hashOf([]byte("absent"))); ok {
		t.Fatal("fetch of unpublished hash should miss")
	}
}

// TestStoreFailOpen: when the owner is unreachable the store degrades to
// local-first semantics — every unknown hash reports first=true so the
// caller uploads it. Correctness is preserved; only dedup quality drops.
func TestStoreFailOpen(t *testing.T) {
	tc := newTestCluster(t, "a", "b")
	hs := tc.pickHashes("b", 3)
	tc.fail["a"] = true
	first := sightings(tc.stores["a"], hs)
	for i, f := range first {
		if !f {
			t.Fatalf("hash %d: degraded query must fail open to first=true", i)
		}
	}
	// The same hashes asked again while still degraded: now locally seen.
	first = sightings(tc.stores["a"], hs)
	for i, f := range first {
		if f {
			t.Fatalf("hash %d: locally-seen hash reported as first while degraded", i)
		}
	}
}
