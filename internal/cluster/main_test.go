package cluster_test

import (
	"testing"

	"streamgpu/internal/testutil"
)

func TestMain(m *testing.M) { testutil.Main(m) }
