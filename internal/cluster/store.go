package cluster

import (
	"sync"

	"streamgpu/internal/sha1x"
	"streamgpu/internal/telemetry"
)

// Store is the cluster-wide content-addressed block index. The sha1 key
// space is partitioned across nodes by the ring (OwnerHash); each node keeps
// the authoritative seen-set for its partition plus a local cache of
// everything it has observed. It implements dedup.BlockStore, so a server
// plugged into it answers "have we seen this block?" cluster-wide instead of
// per-node, and dedup.CompSource/CompSink, so a block compressed once on any
// node ships its compressed body to later sighters instead of being
// recompressed.
//
// Correctness does not depend on the store at all: per-session dedup.Writer
// makes the authoritative stream-order decision, LZSS is deterministic, and
// content addressing keys on the raw bytes — so a lost RPC, a stale ring, or
// a cold new owner only costs duplicate compression work, never archive
// bytes. That is what lets the RPC paths fail open (treat as first) with no
// recovery protocol.
type Store struct {
	self string
	// ownerOf maps a hash to its partition owner under the current ring;
	// swapped by the node on membership change.
	ownerOf func(h [sha1x.Size]byte) string
	// rpc issues one TStore request to addr and returns the response payload.
	rpc func(addr string, req []byte) ([]byte, error)

	mu     sync.Mutex
	seen   map[[sha1x.Size]byte]struct{} // blocks known to the cluster (local view)
	blocks map[[sha1x.Size]byte][]byte   // compressed bodies cached locally

	lookupLocal  *telemetry.Counter // duplicate known before asking anyone
	lookupRemote *telemetry.Counter // duplicate discovered via a partition owner
	lookupFirst  *telemetry.Counter // cluster-wide first sighting
	lookupFailed *telemetry.Counter // owner unreachable; degraded to first
	fetchHit     *telemetry.Counter
	fetchMiss    *telemetry.Counter
}

// NewStore builds a store for node self. ownerOf and rpc may be updated
// before the node starts serving; a nil ownerOf treats every hash as
// self-owned (single-node mode).
func NewStore(self string, reg *telemetry.Registry) *Store {
	return &Store{
		self:         self,
		seen:         make(map[[sha1x.Size]byte]struct{}),
		blocks:       make(map[[sha1x.Size]byte][]byte),
		lookupLocal:  reg.Counter("cluster_store_lookups_total", telemetry.Labels{"result": "local"}),
		lookupRemote: reg.Counter("cluster_store_lookups_total", telemetry.Labels{"result": "remote"}),
		lookupFirst:  reg.Counter("cluster_store_lookups_total", telemetry.Labels{"result": "first"}),
		lookupFailed: reg.Counter("cluster_store_lookups_total", telemetry.Labels{"result": "degraded"}),
		fetchHit:     reg.Counter("cluster_store_fetches_total", telemetry.Labels{"result": "hit"}),
		fetchMiss:    reg.Counter("cluster_store_fetches_total", telemetry.Labels{"result": "miss"}),
	}
}

// Bind installs the routing hooks. Called before serving and again whenever
// the ring changes (Node holds the store lock's peer, so swaps are ordered
// with lookups).
func (s *Store) Bind(ownerOf func(h [sha1x.Size]byte) string, rpc func(addr string, req []byte) ([]byte, error)) {
	s.mu.Lock()
	s.ownerOf = ownerOf
	s.rpc = rpc
	s.mu.Unlock()
}

// Blocks reports the local cache size (for the cluster_store_blocks gauge).
func (s *Store) Blocks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blocks)
}

// RemoteHits reports cluster-level duplicate discoveries (test hook).
func (s *Store) RemoteHits() int64 { return s.lookupRemote.Value() }

// TStore RPC subtypes (payload[0] of a TStore frame).
const (
	storeQuery     = 1 // req: 20N hashes → resp: N known-bytes (marks unknowns seen)
	storeQueryResp = 2
	storeFetch     = 3 // req: one hash → resp: known-byte + compressed body
	storeFetchResp = 4
	storePut       = 5 // req: one hash + compressed body → resp: empty
	storePutResp   = 6
)

// FirstSightings implements dedup.BlockStore: dst[i] is true iff hashes[i]
// is a cluster-wide first sighting. Owned hashes are resolved (and reserved)
// under the local lock; remote-owned unknowns are batched into one Query RPC
// per owner. The owner marks queried unknowns as seen atomically, so exactly
// one node cluster-wide wins each first sighting even when two nodes query
// concurrently. An unreachable owner degrades that batch to "first" — we
// compress locally and lose nothing but the shortcut.
func (s *Store) FirstSightings(hashes [][sha1x.Size]byte, dst []bool) {
	type pending struct {
		idx    []int
		hashes [][sha1x.Size]byte
	}
	var remote map[string]*pending

	s.mu.Lock()
	ownerOf, rpc := s.ownerOf, s.rpc
	for i, h := range hashes {
		if _, ok := s.seen[h]; ok {
			dst[i] = false
			s.lookupLocal.Inc()
			continue
		}
		owner := s.self
		if ownerOf != nil {
			owner = ownerOf(h)
		}
		if owner == s.self || owner == "" || rpc == nil {
			s.seen[h] = struct{}{}
			dst[i] = true
			s.lookupFirst.Inc()
			continue
		}
		if remote == nil {
			remote = make(map[string]*pending)
		}
		p := remote[owner]
		if p == nil {
			p = &pending{}
			remote[owner] = p
		}
		p.idx = append(p.idx, i)
		p.hashes = append(p.hashes, h)
	}
	s.mu.Unlock()

	for owner, p := range remote {
		req := make([]byte, 1, 1+len(p.hashes)*sha1x.Size)
		req[0] = storeQuery
		for _, h := range p.hashes {
			req = append(req, h[:]...)
		}
		resp, err := rpc(owner, req)
		if err != nil || len(resp) < 1+len(p.hashes) || resp[0] != storeQueryResp {
			// Fail open: claim the sighting locally. Worst case two nodes
			// both compress the block; the archives are unaffected.
			s.mu.Lock()
			for _, i := range p.idx {
				s.seen[hashes[i]] = struct{}{}
				dst[i] = true
			}
			s.mu.Unlock()
			s.lookupFailed.Add(int64(len(p.idx)))
			continue
		}
		known := resp[1:]
		s.mu.Lock()
		for j, i := range p.idx {
			s.seen[hashes[i]] = struct{}{}
			if known[j] == 1 {
				dst[i] = false
				s.lookupRemote.Inc()
			} else {
				dst[i] = true
				s.lookupFirst.Inc()
			}
		}
		s.mu.Unlock()
	}
}

// PublishComp implements dedup.CompSink: cache the compressed body locally
// and push it to the partition owner so other nodes' fetches find it. comp
// is only valid during the call (batch arenas recycle), so it is copied.
func (s *Store) PublishComp(h [sha1x.Size]byte, comp []byte) {
	body := append([]byte(nil), comp...)
	s.mu.Lock()
	if _, ok := s.blocks[h]; ok {
		s.mu.Unlock()
		return
	}
	s.blocks[h] = body
	ownerOf, rpc := s.ownerOf, s.rpc
	s.mu.Unlock()

	owner := s.self
	if ownerOf != nil {
		owner = ownerOf(h)
	}
	if owner == s.self || owner == "" || rpc == nil {
		return
	}
	req := make([]byte, 1, 1+sha1x.Size+len(body))
	req[0] = storePut
	req = append(req, h[:]...)
	req = append(req, body...)
	// Best-effort: a lost put only means later fetches miss and recompress.
	_, _ = rpc(owner, req)
}

// FetchComp implements dedup.CompSource: return the compressed body of a
// block some node already compressed. Local cache first, then the partition
// owner. A miss (reservation won elsewhere but the body not yet published)
// returns ok=false and the caller compresses inline.
func (s *Store) FetchComp(h [sha1x.Size]byte) ([]byte, bool) {
	s.mu.Lock()
	if body, ok := s.blocks[h]; ok {
		s.mu.Unlock()
		s.fetchHit.Inc()
		return body, true
	}
	ownerOf, rpc := s.ownerOf, s.rpc
	s.mu.Unlock()

	owner := s.self
	if ownerOf != nil {
		owner = ownerOf(h)
	}
	if owner == s.self || owner == "" || rpc == nil {
		s.fetchMiss.Inc()
		return nil, false
	}
	req := make([]byte, 1, 1+sha1x.Size)
	req[0] = storeFetch
	req = append(req, h[:]...)
	resp, err := rpc(owner, req)
	if err != nil || len(resp) < 2 || resp[0] != storeFetchResp || resp[1] != 1 {
		s.fetchMiss.Inc()
		return nil, false
	}
	body := append([]byte(nil), resp[2:]...)
	s.mu.Lock()
	if _, ok := s.blocks[h]; !ok {
		s.blocks[h] = body
	}
	s.mu.Unlock()
	s.fetchHit.Inc()
	return body, true
}

// HandleRPC serves one TStore request payload from a peer and returns the
// response payload. Unknown or malformed requests return an empty response,
// which callers treat as failure (and fail open).
func (s *Store) HandleRPC(req []byte) []byte {
	if len(req) < 1 {
		return nil
	}
	switch req[0] {
	case storeQuery:
		body := req[1:]
		if len(body)%sha1x.Size != 0 {
			return nil
		}
		n := len(body) / sha1x.Size
		resp := make([]byte, 1+n)
		resp[0] = storeQueryResp
		var h [sha1x.Size]byte
		s.mu.Lock()
		for i := 0; i < n; i++ {
			copy(h[:], body[i*sha1x.Size:])
			if _, ok := s.seen[h]; ok {
				resp[1+i] = 1
			} else {
				// Reservation: the querier is about to compress this block;
				// record it so the next asker sees a duplicate.
				s.seen[h] = struct{}{}
			}
		}
		s.mu.Unlock()
		return resp
	case storeFetch:
		if len(req) < 1+sha1x.Size {
			return nil
		}
		var h [sha1x.Size]byte
		copy(h[:], req[1:])
		s.mu.Lock()
		body, ok := s.blocks[h]
		s.mu.Unlock()
		resp := make([]byte, 2, 2+len(body))
		resp[0] = storeFetchResp
		if ok {
			resp[1] = 1
			resp = append(resp, body...)
		}
		return resp
	case storePut:
		if len(req) < 1+sha1x.Size {
			return nil
		}
		var h [sha1x.Size]byte
		copy(h[:], req[1:])
		body := append([]byte(nil), req[1+sha1x.Size:]...)
		s.mu.Lock()
		if _, ok := s.blocks[h]; !ok {
			s.blocks[h] = body
		}
		s.seen[h] = struct{}{}
		s.mu.Unlock()
		return []byte{storePutResp}
	default:
		return nil
	}
}
