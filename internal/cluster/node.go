package cluster

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"streamgpu/internal/fault"
	"streamgpu/internal/server"
	"streamgpu/internal/server/wire"
	"streamgpu/internal/telemetry"
)

// Config configures one cluster node.
type Config struct {
	// Addr is the TCP listen address ("host:port"; ":0" picks a port).
	Addr string
	// Advertise is the address peers and clients reach this node at; defaults
	// to the listener's address. It doubles as the node's member name.
	Advertise string
	// Join lists seed peers to gossip with at startup. Empty bootstraps a
	// one-node cluster that others join.
	Join []string
	// Forward serves non-owned tenants by splicing the connection to the
	// owner instead of sending TRedirect (the -forward flag; see DESIGN.md
	// §14 for the tradeoff).
	Forward bool
	// VNodes is the ring's virtual-node count per member (DefaultVNodes).
	VNodes int
	// RingSeed fixes the ring layout; every node must agree on it.
	RingSeed int64
	// GossipSeed drives probe-target selection (deterministic under test).
	GossipSeed int64
	// GossipInterval is the probe period (default 200ms; tests run ~15ms).
	GossipInterval time.Duration
	// PingTimeout bounds one ping or ping-req RPC (default GossipInterval).
	PingTimeout time.Duration
	// SuspectTimeout is the refutation window before Suspect becomes Dead
	// (default 4× GossipInterval).
	SuspectTimeout time.Duration
	// IndirectK is the helper count for indirect probes (default 2).
	IndirectK int
	// Faults injects node-level faults: every accepted connection, gossip
	// tick, and served peer RPC consults the injector, and DeviceLost kills
	// the whole node (abrupt crash, as peers see it). Zero injects nothing.
	Faults fault.Config
	// Server configures the embedded streamd server. Its Store and Metrics
	// fields are overridden by the node (Metrics if the node's Metrics is
	// set).
	Server server.Config
	// Metrics receives the node's cluster gauges and counters plus the
	// embedded server's instrumentation. nil is off.
	Metrics *telemetry.Registry
}

func (c Config) gossipInterval() time.Duration {
	if c.GossipInterval <= 0 {
		return 200 * time.Millisecond
	}
	return c.GossipInterval
}

func (c Config) pingTimeout() time.Duration {
	if c.PingTimeout > 0 {
		return c.PingTimeout
	}
	return c.gossipInterval()
}

func (c Config) suspectTimeout() time.Duration {
	if c.SuspectTimeout > 0 {
		return c.SuspectTimeout
	}
	return 4 * c.gossipInterval()
}

func (c Config) indirectK() int {
	if c.IndirectK <= 0 {
		return 2
	}
	return c.IndirectK
}

// Node is one streamd cluster member: a listener that routes client
// connections by ring ownership (serve, forward, or redirect), a gossip loop
// that keeps the membership view converging, an embedded server.Server for
// the sessions it owns, and a partition of the cluster-wide dedup store.
type Node struct {
	cfg  Config
	self string // advertise address == member name

	srv   *server.Server
	store *Store
	peers *peerPool

	detMu sync.Mutex
	det   *Detector
	// lastVer is the detector version the current ring was built at.
	lastVer uint64

	ring atomic.Pointer[Ring]

	ctx    context.Context
	cancel context.CancelFunc

	mu     sync.Mutex
	ln     net.Listener
	conns  map[net.Conn]struct{}
	inject *fault.Injector // nil when Faults is zero; guarded by mu

	wg     sync.WaitGroup
	killed atomic.Bool
	dead   chan struct{} // closed when the embedded server has shut down

	forwarded *telemetry.Counter
	redirects *telemetry.Counter
	gossipRx  *telemetry.Counter
	gossipTx  *telemetry.Counter
}

// NewNode builds a node; Start brings it up.
func NewNode(cfg Config) *Node {
	ctx, cancel := context.WithCancel(context.Background())
	n := &Node{
		cfg:       cfg,
		ctx:       ctx,
		cancel:    cancel,
		conns:     make(map[net.Conn]struct{}),
		dead:      make(chan struct{}),
		forwarded: cfg.Metrics.Counter("cluster_forwarded_conns_total", telemetry.Labels{}),
		redirects: cfg.Metrics.Counter("cluster_redirects_total", telemetry.Labels{}),
		gossipRx:  cfg.Metrics.Counter("cluster_gossip_messages_total", telemetry.Labels{"dir": "rx"}),
		gossipTx:  cfg.Metrics.Counter("cluster_gossip_messages_total", telemetry.Labels{"dir": "tx"}),
	}
	if cfg.Faults != (fault.Config{}) {
		n.inject = fault.New(cfg.Faults)
	}
	return n
}

// Start binds the listener, launches the accept and gossip loops, and starts
// the embedded server's pipelines. It returns once the node is serving.
func (n *Node) Start() error {
	ln, err := net.Listen("tcp", n.cfg.Addr)
	if err != nil {
		return fmt.Errorf("cluster: listen %s: %w", n.cfg.Addr, err)
	}
	n.mu.Lock()
	n.ln = ln
	n.mu.Unlock()
	n.self = n.cfg.Advertise
	if n.self == "" {
		n.self = ln.Addr().String()
	}

	n.det = NewDetector(DetectorConfig{
		Self:           n.self,
		Seed:           n.cfg.GossipSeed,
		SuspectTimeout: n.cfg.suspectTimeout(),
	})
	seeds := make([]Update, 0, len(n.cfg.Join))
	for _, addr := range n.cfg.Join {
		if addr != "" && addr != n.self {
			seeds = append(seeds, Update{Member: addr, State: Alive})
		}
	}
	n.det.Absorb(seeds, time.Now())
	n.ring.Store(NewRing(n.cfg.RingSeed, n.cfg.VNodes, n.det.Active()))
	n.detMu.Lock()
	n.lastVer = n.det.Version()
	n.detMu.Unlock()

	n.peers = newPeerPool(n.cfg.pingTimeout())
	n.store = NewStore(n.self, n.cfg.Metrics)
	n.store.Bind(
		func(h [20]byte) string { return n.ring.Load().OwnerHash(h) },
		func(addr string, req []byte) ([]byte, error) {
			return n.peers.rpc(addr, wire.TStore, req, 2*time.Second)
		},
	)

	scfg := n.cfg.Server
	scfg.Store = n.store
	if n.cfg.Metrics != nil {
		scfg.Metrics = n.cfg.Metrics
	}
	n.srv = server.New(scfg)
	n.srv.Start()

	n.registerGauges()

	n.wg.Add(2)
	go n.acceptLoop(ln)
	go n.gossipLoop()
	return nil
}

func (n *Node) registerGauges() {
	m := n.cfg.Metrics
	count := func(pick func(alive, suspect, dead int) int) func() float64 {
		return func() float64 {
			n.detMu.Lock()
			a, s, d := n.det.CountByState()
			n.detMu.Unlock()
			return float64(pick(a, s, d))
		}
	}
	m.GaugeFunc("cluster_members", telemetry.Labels{"state": "alive"},
		count(func(a, _, _ int) int { return a + 1 })) // + self
	m.GaugeFunc("cluster_members", telemetry.Labels{"state": "suspect"},
		count(func(_, s, _ int) int { return s }))
	m.GaugeFunc("cluster_members", telemetry.Labels{"state": "dead"},
		count(func(_, _, d int) int { return d }))
	m.GaugeFunc("cluster_ring_size", telemetry.Labels{}, func() float64 {
		return float64(n.ring.Load().Len())
	})
	m.GaugeFunc("cluster_incarnation", telemetry.Labels{}, func() float64 {
		n.detMu.Lock()
		defer n.detMu.Unlock()
		return float64(n.det.Incarnation())
	})
	m.GaugeFunc("cluster_store_blocks", telemetry.Labels{}, func() float64 {
		return float64(n.store.Blocks())
	})
}

// Addr returns the node's advertised address (and member name).
func (n *Node) Addr() string { return n.self }

// Dead is closed once the node has been killed (fault injection or Kill)
// and its embedded server has shut down — the daemon's cue to exit instead
// of lingering as a process whose node is gone.
func (n *Node) Dead() <-chan struct{} { return n.dead }

// Server exposes the embedded server (test hook).
func (n *Node) Server() *server.Server { return n.srv }

// StoreRef exposes the node's store partition (test hook).
func (n *Node) StoreRef() *Store { return n.store }

// Owner returns the node this node's ring places tenant on.
func (n *Node) Owner(tenant uint32) string { return n.ring.Load().OwnerTenant(tenant) }

// Members returns the node's current view: self plus every non-dead member.
func (n *Node) Members() []string {
	n.detMu.Lock()
	defer n.detMu.Unlock()
	return n.det.Active()
}

// faultCheck consults the node-level injector; DeviceLost crashes the node.
// It reports whether the node is still alive.
func (n *Node) faultCheck(op fault.Op) bool {
	if n.killed.Load() {
		return false
	}
	n.mu.Lock()
	inject := n.inject
	var c fault.Class
	if inject != nil {
		c = inject.Check(op)
	}
	n.mu.Unlock()
	if c == fault.DeviceLost {
		n.Kill()
		return false
	}
	return true
}

// Kill crashes the node abruptly, as its peers and clients experience a
// process death: the listener and every open connection close immediately,
// the loops stop, and the embedded server is force-drained in the
// background. Idempotent.
func (n *Node) Kill() {
	if !n.killed.CompareAndSwap(false, true) {
		return
	}
	n.cancel()
	n.mu.Lock()
	ln := n.ln
	conns := make([]net.Conn, 0, len(n.conns))
	for c := range n.conns {
		conns = append(conns, c)
	}
	n.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.Close()
	}
	if n.peers != nil {
		n.peers.closeAll()
	}
	go func() {
		defer close(n.dead)
		if n.srv == nil {
			return // Start never got far enough to build the server
		}
		ctx, cancel := context.WithCancel(context.Background())
		cancel()            // already-expired context: take the forced drain path now
		n.srv.Shutdown(ctx) //streamvet:ignore ctxprop deliberate crash semantics: the pre-canceled context forces the abort path immediately
	}()
}

// Close stops the node and waits for every goroutine it started, so tests
// can assert leak-free teardown. After a Kill it only waits.
func (n *Node) Close() error {
	n.Kill()
	<-n.dead
	n.wg.Wait()
	return nil
}

// track registers an accepted or dialed connection so Kill can sever it.
// It reports false (and closes the conn) when the node is already dead.
func (n *Node) track(c net.Conn) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.killed.Load() {
		c.Close()
		return false
	}
	n.conns[c] = struct{}{}
	return true
}

func (n *Node) untrack(c net.Conn) {
	c.Close()
	n.mu.Lock()
	delete(n.conns, c)
	n.mu.Unlock()
}

func (n *Node) acceptLoop(ln net.Listener) {
	defer n.wg.Done()
	for {
		conn, err := ln.Accept()
		if err != nil {
			return // listener closed by Kill/Close
		}
		if !n.faultCheck(fault.Transfer) || !n.track(conn) {
			conn.Close()
			return
		}
		n.wg.Add(1)
		go func() {
			defer n.wg.Done()
			n.handleConn(conn)
		}()
	}
}

// handleConn classifies one accepted connection by its first frame: peer
// traffic (TGossip/TStore) enters the RPC serve loop; everything else is a
// client session, routed by tenant ownership.
func (n *Node) handleConn(conn net.Conn) {
	defer n.untrack(conn)
	br := bufio.NewReaderSize(conn, 1<<16)
	maxPayload := n.cfg.Server.MaxPayload
	for {
		raw, err := wire.ReadRaw(br, maxPayload)
		if err != nil {
			return
		}
		f, _, err := wire.Decode(raw)
		if err != nil {
			return
		}
		switch f.Type {
		case wire.TGossip, wire.TStore:
			n.servePeer(conn, br, raw, f)
			return
		case wire.TData:
			owner := n.ring.Load().OwnerTenant(f.Tenant)
			if owner != n.self && owner != "" {
				if n.cfg.Forward {
					n.forward(conn, br, raw, owner)
					return
				}
				n.redirect(conn, f, owner)
				continue // client re-dials; drain any further frames
			}
		}
		// This node owns the session (or the frame is stream control that
		// precedes any data): hand the connection to the embedded server,
		// replaying the consumed bytes.
		n.srv.ServeConn(&replayConn{Conn: conn, pre: raw, br: br})
		return
	}
}

// redirect answers one non-owned TData with the owner's address. The write
// is direct and small; a failed write just ends the connection early.
func (n *Node) redirect(conn net.Conn, f wire.Frame, owner string) {
	n.redirects.Inc()
	out := wire.Append(nil, wire.Frame{
		Type:    wire.TRedirect,
		Svc:     f.Svc,
		Tenant:  f.Tenant,
		Seq:     f.Seq,
		Payload: wire.AppendRedirectInfo(nil, n.cfg.gossipInterval(), owner),
	})
	conn.SetWriteDeadline(time.Now().Add(2 * time.Second))
	_, _ = conn.Write(out)
	conn.SetWriteDeadline(time.Time{})
}

// forward splices the client connection to the owning node: the consumed
// first frame is replayed upstream, then bytes flow both ways until either
// side closes. The extra hop halves per-node throughput for misplaced
// sessions but keeps v1 clients (which do not understand TRedirect) working
// against a cluster.
func (n *Node) forward(client net.Conn, br *bufio.Reader, raw []byte, owner string) {
	up, err := net.DialTimeout("tcp", owner, 2*time.Second)
	if err != nil || !n.track(up) {
		// Owner unreachable (likely mid-failover): tell the client to back
		// off and retry; by then the ring will have moved.
		out := wire.Append(nil, wire.Frame{Type: wire.TReject, Tenant: 0, Seq: 0,
			Payload: wire.AppendRejectInfo(nil, wire.ReasonOverload, n.cfg.gossipInterval())})
		_, _ = client.Write(out)
		return
	}
	defer n.untrack(up)
	n.forwarded.Inc()
	if _, err := up.Write(raw); err != nil {
		return
	}
	done := make(chan struct{})
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		defer close(done)
		// Client→owner. Ends when the client closes or either conn is
		// severed; half-close propagates so the owner sees the TEnd EOF.
		_, _ = io.Copy(up, br)
		if tc, ok := up.(*net.TCPConn); ok {
			tc.CloseWrite()
		}
	}()
	// Owner→client. Ends when the owner finishes the session (TEnd + close).
	_, _ = io.Copy(client, up)
	client.Close()
	up.Close()
	<-done
}

// replayConn replays already-consumed bytes (the routed first frame plus the
// reader's buffer) before reading from the connection, so the embedded
// server sees the byte stream from its start.
type replayConn struct {
	net.Conn
	pre []byte
	br  *bufio.Reader
}

func (rc *replayConn) Read(p []byte) (int, error) {
	if len(rc.pre) > 0 {
		n := copy(p, rc.pre)
		rc.pre = rc.pre[n:]
		return n, nil
	}
	return rc.br.Read(p)
}

// servePeer is the node→node RPC loop: each request frame (TGossip or
// TStore) gets one response frame of the same type and sequence number on
// the same connection.
func (n *Node) servePeer(conn net.Conn, br *bufio.Reader, raw []byte, f wire.Frame) {
	for {
		if !n.faultCheck(fault.Kernel) {
			return
		}
		var resp []byte
		switch f.Type {
		case wire.TGossip:
			n.gossipRx.Inc()
			resp = n.handleGossip(f.Payload)
		case wire.TStore:
			resp = n.store.HandleRPC(f.Payload)
		default:
			return
		}
		out := wire.Append(nil, wire.Frame{Type: f.Type, Svc: f.Svc, Seq: f.Seq, Payload: resp})
		if _, err := conn.Write(out); err != nil {
			return
		}
		var err error
		raw, err = wire.ReadRaw(br, n.cfg.Server.MaxPayload)
		if err != nil {
			return
		}
		if f, _, err = wire.Decode(raw); err != nil {
			return
		}
	}
}

// handleGossip processes one membership message and returns the ack payload.
func (n *Node) handleGossip(payload []byte) []byte {
	g, ok := parseGossip(payload)
	if !ok {
		return nil
	}
	now := time.Now()
	n.detMu.Lock()
	n.det.Absorb(g.Updates, now)
	updates := n.det.Updates()
	n.detMu.Unlock()
	n.maybeRebuildRing()

	ack := gossipMsg{Kind: gossipAck, Ok: true, From: n.self, Updates: updates}
	switch g.Kind {
	case gossipPing:
	case gossipPingReq:
		// Relay: probe the target on the requester's behalf.
		ack.Ok = n.ping(g.Target) == nil
	default:
		return nil
	}
	return ack.encode(nil)
}

// gossipLoop is the SWIM probe driver: every interval, advance the detector
// (suspect timeouts, next target), run one probe round, absorb what came
// back, and rebuild the ring if the active set moved.
func (n *Node) gossipLoop() {
	defer n.wg.Done()
	t := time.NewTicker(n.cfg.gossipInterval())
	defer t.Stop()
	for {
		select {
		case <-n.ctx.Done():
			return
		case <-t.C:
		}
		if !n.faultCheck(fault.Kernel) {
			return
		}
		n.detMu.Lock()
		target, ok := n.det.Tick(time.Now())
		n.detMu.Unlock()
		n.maybeRebuildRing()
		if !ok {
			continue
		}
		alive := n.ping(target) == nil
		if !alive {
			n.detMu.Lock()
			helpers := n.det.IndirectTargets(target, n.cfg.indirectK())
			n.detMu.Unlock()
			for _, h := range helpers {
				if n.pingReq(h, target) {
					alive = true
					break
				}
			}
		}
		n.detMu.Lock()
		n.det.ProbeResult(target, alive, time.Now())
		n.detMu.Unlock()
		n.maybeRebuildRing()
	}
}

// maybeRebuildRing rebuilds the ring when the detector's active set has
// changed since the last build.
func (n *Node) maybeRebuildRing() {
	n.detMu.Lock()
	ver := n.det.Version()
	if ver == n.lastVer {
		n.detMu.Unlock()
		return
	}
	n.lastVer = ver
	members := n.det.Active()
	n.detMu.Unlock()
	n.ring.Store(NewRing(n.cfg.RingSeed, n.cfg.VNodes, members))
}

// ping sends one direct probe to addr, absorbing the piggybacked membership
// table from the ack.
func (n *Node) ping(addr string) error {
	return n.gossipRPC(addr, gossipMsg{Kind: gossipPing, From: n.self, Updates: n.snapshotUpdates()})
}

// pingReq asks helper to probe target; it reports whether the helper
// vouches for the target being alive.
func (n *Node) pingReq(helper, target string) bool {
	msg := gossipMsg{Kind: gossipPingReq, From: n.self, Target: target, Updates: n.snapshotUpdates()}
	ack, err := n.gossipRPCAck(helper, msg)
	return err == nil && ack.Ok
}

func (n *Node) snapshotUpdates() []Update {
	n.detMu.Lock()
	defer n.detMu.Unlock()
	return n.det.Updates()
}

func (n *Node) gossipRPC(addr string, msg gossipMsg) error {
	_, err := n.gossipRPCAck(addr, msg)
	return err
}

func (n *Node) gossipRPCAck(addr string, msg gossipMsg) (gossipMsg, error) {
	n.gossipTx.Inc()
	resp, err := n.peers.rpc(addr, wire.TGossip, msg.encode(nil), n.cfg.pingTimeout())
	if err != nil {
		return gossipMsg{}, err
	}
	ack, ok := parseGossip(resp)
	if !ok || ack.Kind != gossipAck {
		return gossipMsg{}, fmt.Errorf("cluster: bad ack from %s", addr)
	}
	n.detMu.Lock()
	n.det.Absorb(ack.Updates, time.Now())
	n.detMu.Unlock()
	n.maybeRebuildRing()
	return ack, nil
}

// peerPool keeps one cached connection per peer for node→node RPCs. Calls to
// the same peer serialize on its connection (gossip and store traffic is
// small and frequent; one in-flight RPC per peer keeps the protocol trivially
// request/response); calls to different peers run concurrently.
type peerPool struct {
	mu     sync.Mutex
	peers  map[string]*peer
	closed bool
	dialT  time.Duration
}

type peer struct {
	mu   sync.Mutex // serializes RPCs on this peer (held across the round trip)
	cmu  sync.Mutex // guards conn/br only — closeAll severs mid-RPC without p.mu
	conn net.Conn
	br   *bufio.Reader
	seq  uint64
}

// setConn swaps the cached connection under cmu so closeAll can read it
// race-free while an RPC is in flight.
func (p *peer) setConn(c net.Conn, br *bufio.Reader) {
	p.cmu.Lock()
	p.conn = c
	p.br = br
	p.cmu.Unlock()
}

func newPeerPool(dialTimeout time.Duration) *peerPool {
	if dialTimeout <= 0 {
		dialTimeout = 2 * time.Second
	}
	return &peerPool{peers: make(map[string]*peer), dialT: dialTimeout}
}

// rpc sends one request frame of type typ to addr and returns the response
// payload (copied; the read buffer is reused). Any error tears the cached
// connection down so the next call redials.
func (pp *peerPool) rpc(addr string, typ wire.Type, payload []byte, timeout time.Duration) ([]byte, error) {
	pp.mu.Lock()
	if pp.closed {
		pp.mu.Unlock()
		return nil, fmt.Errorf("cluster: peer pool closed")
	}
	p := pp.peers[addr]
	if p == nil {
		p = &peer{}
		pp.peers[addr] = p
	}
	pp.mu.Unlock()

	p.mu.Lock()
	defer p.mu.Unlock()
	if p.conn == nil {
		conn, err := net.DialTimeout("tcp", addr, pp.dialT)
		if err != nil {
			return nil, err
		}
		p.setConn(conn, bufio.NewReaderSize(conn, 1<<16))
	}
	fail := func(err error) ([]byte, error) {
		p.conn.Close()
		p.setConn(nil, nil)
		return nil, err
	}
	p.seq++
	out := wire.Append(nil, wire.Frame{Type: typ, Seq: p.seq, Payload: payload})
	p.conn.SetDeadline(time.Now().Add(timeout))
	if _, err := p.conn.Write(out); err != nil {
		return fail(err)
	}
	raw, err := wire.ReadRaw(p.br, 0)
	if err != nil {
		return fail(err)
	}
	f, _, err := wire.Decode(raw)
	if err != nil || f.Type != typ || f.Seq != p.seq {
		return fail(fmt.Errorf("cluster: bad rpc response from %s", addr))
	}
	p.conn.SetDeadline(time.Time{})
	return append([]byte(nil), f.Payload...), nil
}

// closeAll severs every cached peer connection and refuses new RPCs
// (Kill/Close). In-flight RPCs fail and their callers fail open.
func (pp *peerPool) closeAll() {
	pp.mu.Lock()
	pp.closed = true
	peers := make([]*peer, 0, len(pp.peers))
	for _, p := range pp.peers {
		peers = append(peers, p)
	}
	pp.mu.Unlock()
	for _, p := range peers {
		// Close without taking p.mu: an in-flight RPC holds it while blocked
		// in a read, and closing the conn is what unblocks it. cmu guards the
		// pointer itself and is never held across I/O.
		p.cmu.Lock()
		if p.conn != nil {
			p.conn.Close()
		}
		p.cmu.Unlock()
	}
}
