// Package cluster shards the streaming service across N streamd nodes: a
// consistent-hash ring places tenants on nodes, a SWIM-style gossip
// failure detector keeps every node's view of the membership converging,
// client connections are routed on the existing wire framing (any node
// accepts, then serves, forwards, or redirects to the owner), and a
// content-addressed store dedups blocks cluster-wide instead of per-session.
//
// The design follows the FastFlow lesson the ROADMAP cites: the same
// farm/pipeline structure composes across placement boundaries, and work
// migrates to where capacity is. Here "placement" is tenant→node ownership
// on the ring, and "migration" is what happens to that mapping when
// membership changes — a node joining or dying moves only the expected
// 1/(n+1) fraction of tenants, which the ring's property test pins.
package cluster

import (
	"encoding/binary"
	"hash/fnv"
	"sort"

	"streamgpu/internal/sha1x"
)

// DefaultVNodes is the virtual-node count per member. 64 points per node
// keeps the largest-to-smallest ownership spread within ~2x for small
// clusters while the ring stays a few KB.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring over a member set. Every node
// builds its ring from the same (seed, vnodes, members) inputs, so two nodes
// with converged membership agree on every owner without coordination.
// Rebuild on membership change; reads are lock-free.
type Ring struct {
	seed   int64
	points []ringPoint // sorted by key, ties broken by member
	member []string    // sorted member list the ring was built from
}

type ringPoint struct {
	key   uint64
	owner string
}

// NewRing builds a ring with vnodes virtual points per member (<= 0 selects
// DefaultVNodes). The layout is a pure function of (seed, vnodes, members):
// member order does not matter, and the same inputs yield the same ring on
// every node.
func NewRing(seed int64, vnodes int, members []string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), members...)
	sort.Strings(sorted)
	r := &Ring{seed: seed, member: sorted, points: make([]ringPoint, 0, len(sorted)*vnodes)}
	for _, m := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{key: pointHash(seed, m, v), owner: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].key != r.points[j].key {
			return r.points[i].key < r.points[j].key
		}
		return r.points[i].owner < r.points[j].owner
	})
	return r
}

// pointHash places one virtual node: FNV-64a over (seed, member, vnode),
// then a strong finalizer. Raw FNV has poor avalanche when inputs differ
// only in trailing bytes — consecutive vnode indices land within a narrow
// window of the ring, collapsing a member's virtual nodes into effectively
// one point — so the output must be remixed before use as a ring position.
func pointHash(seed int64, member string, v int) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], uint64(seed))
	h.Write(b[:])
	h.Write([]byte(member))
	binary.BigEndian.PutUint64(b[:], uint64(v))
	h.Write(b[:])
	return mix64(h.Sum64())
}

// keyHash maps an arbitrary ring key (tenant, block hash prefix) onto the
// ring's key space, mixing the seed so tenant placement is deployment-unique.
func keyHash(seed int64, kind byte, key uint64) uint64 {
	h := fnv.New64a()
	var b [9]byte
	binary.BigEndian.PutUint64(b[:8], uint64(seed))
	b[8] = kind
	h.Write(b[:])
	binary.BigEndian.PutUint64(b[:8], key)
	h.Write(b[:8])
	return mix64(h.Sum64())
}

// mix64 is the murmur3 finalizer: full avalanche over 64 bits.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Members returns the sorted member list the ring was built from.
func (r *Ring) Members() []string { return r.member }

// Len reports the member count.
func (r *Ring) Len() int { return len(r.member) }

// owner returns the member owning ring position key: the first virtual node
// clockwise from key, wrapping at the top.
func (r *Ring) owner(key uint64) string {
	if len(r.points) == 0 {
		return ""
	}
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].key >= key })
	if i == len(r.points) {
		i = 0
	}
	return r.points[i].owner
}

// OwnerTenant returns the node owning a tenant's sessions.
func (r *Ring) OwnerTenant(tenant uint32) string {
	return r.owner(keyHash(r.seed, 't', uint64(tenant)))
}

// OwnerHash returns the node owning a content hash's store partition. Block
// ownership is keyed on the hash, not the tenant, so the store's key space
// spreads evenly regardless of how skewed tenant traffic is.
func (r *Ring) OwnerHash(h [sha1x.Size]byte) string {
	return r.owner(keyHash(r.seed, 'h', binary.BigEndian.Uint64(h[:8])))
}
