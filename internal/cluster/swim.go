package cluster

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// State is a member's health in the local membership view.
type State uint8

const (
	// Alive members own ring partitions and receive probes.
	Alive State = iota
	// Suspect members failed a probe round; they still own ring partitions
	// (so a transiently slow node does not churn placement) but are declared
	// Dead if they don't refute within SuspectTimeout.
	Suspect
	// Dead members are removed from the ring. They rejoin by gossiping an
	// Alive with a higher incarnation.
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	default:
		return fmt.Sprintf("state(%d)", uint8(s))
	}
}

// Update is one gossiped membership claim: "member is in state at
// incarnation inc". Updates piggyback on every ping/ack, which is what makes
// SWIM's dissemination free — the failure-detection traffic carries them.
type Update struct {
	Member string
	State  State
	Inc    uint32 // incarnation: refutation counter owned by the member itself
}

// DetectorConfig configures a Detector. The zero value is usable for tests;
// Node fills in production-ish timing.
type DetectorConfig struct {
	Self string
	// Seed drives probe-target and indirect-helper selection; runs with the
	// same seed and event order pick identical targets.
	Seed int64
	// SuspectTimeout is how long a Suspect member has to refute before being
	// declared Dead.
	SuspectTimeout time.Duration
}

func (c DetectorConfig) suspectTimeout() time.Duration {
	if c.SuspectTimeout <= 0 {
		return 400 * time.Millisecond
	}
	return c.SuspectTimeout
}

type memberState struct {
	state State
	inc   uint32
	// suspectAt is when the member entered Suspect; zero otherwise.
	suspectAt time.Time
}

// Detector is the SWIM-style failure detector as a pure state machine: the
// Node feeds it probe outcomes and received gossip, and it answers "who do I
// probe next", "what do I gossip", and "who is in the ring". It does no I/O
// and reads no clocks — every transition takes an explicit now — so the
// state-transition tests and partition simulations drive it deterministically
// with a virtual clock. Not safe for concurrent use; Node serializes access.
type Detector struct {
	cfg     DetectorConfig
	rng     *rand.Rand
	members map[string]*memberState // excludes self
	selfInc uint32
	// probe round-robin: a shuffled order consumed one target per tick,
	// reshuffled when exhausted (SWIM's round-robin randomized probing, which
	// bounds worst-case detection time).
	order []string
	next  int
	// version increments on any membership change the ring cares about
	// (alive/suspect set or member list), letting Node rebuild lazily.
	version uint64
}

// NewDetector builds a detector that considers only Self alive.
func NewDetector(cfg DetectorConfig) *Detector {
	return &Detector{
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		members: make(map[string]*memberState),
	}
}

// Self returns the local member name.
func (d *Detector) Self() string { return d.cfg.Self }

// Incarnation returns the local incarnation number.
func (d *Detector) Incarnation() uint32 { return d.selfInc }

// Version increments whenever the active member set changes; callers rebuild
// the ring when it moves.
func (d *Detector) Version() uint64 { return d.version }

// Active returns self plus every Alive and Suspect member, sorted — the
// ring's input. Suspects stay in until declared Dead so a slow-but-live node
// doesn't flap ownership.
func (d *Detector) Active() []string {
	out := []string{d.cfg.Self}
	for m, ms := range d.members {
		if ms.state != Dead {
			out = append(out, m)
		}
	}
	sort.Strings(out)
	return out
}

// StateOf reports a member's current state and incarnation. Self is always
// Alive.
func (d *Detector) StateOf(member string) (State, uint32, bool) {
	if member == d.cfg.Self {
		return Alive, d.selfInc, true
	}
	ms, ok := d.members[member]
	if !ok {
		return 0, 0, false
	}
	return ms.state, ms.inc, true
}

// CountByState tallies non-self members per state (for telemetry gauges).
func (d *Detector) CountByState() (alive, suspect, dead int) {
	for _, ms := range d.members {
		switch ms.state {
		case Alive:
			alive++
		case Suspect:
			suspect++
		case Dead:
			dead++
		}
	}
	return
}

// Tick advances time-driven transitions (suspect→dead) and picks the next
// probe target. ok is false when there is nobody to probe. Dead members stay
// in the probe rotation: one successful ping resurrects them, which is how
// two halves of a healed partition rediscover each other without any
// out-of-band join step.
func (d *Detector) Tick(now time.Time) (target string, ok bool) {
	timeout := d.cfg.suspectTimeout()
	for m, ms := range d.members {
		if ms.state == Suspect && now.Sub(ms.suspectAt) >= timeout {
			d.declareDead(m, ms.inc)
		}
	}
	return d.nextProbe()
}

// nextProbe consumes the shuffled round-robin order, reshuffling over the
// full member set when exhausted (SWIM's round-robin randomized probing,
// which bounds worst-case detection time).
func (d *Detector) nextProbe() (string, bool) {
	for tries := 0; tries < 2; tries++ {
		for d.next < len(d.order) {
			m := d.order[d.next]
			d.next++
			if _, ok := d.members[m]; ok {
				return m, true
			}
		}
		d.reshuffle()
	}
	return "", false
}

func (d *Detector) reshuffle() {
	d.order = d.order[:0]
	for m := range d.members {
		d.order = append(d.order, m)
	}
	sort.Strings(d.order) // deterministic base order before the seeded shuffle
	d.rng.Shuffle(len(d.order), func(i, j int) { d.order[i], d.order[j] = d.order[j], d.order[i] })
	d.next = 0
}

// IndirectTargets picks up to k live helpers (excluding target) for the
// ping-req stage of a failed direct probe.
func (d *Detector) IndirectTargets(target string, k int) []string {
	var cand []string
	for m, ms := range d.members {
		if m != target && ms.state == Alive {
			cand = append(cand, m)
		}
	}
	sort.Strings(cand)
	d.rng.Shuffle(len(cand), func(i, j int) { cand[i], cand[j] = cand[j], cand[i] })
	if len(cand) > k {
		cand = cand[:k]
	}
	return cand
}

// ProbeResult records the outcome of a full probe round (direct ping plus
// any indirect ping-reqs) against target. Failure moves Alive→Suspect;
// success refreshes a Suspect back to Alive at the same incarnation (we
// observed it alive ourselves, which outranks our own stale suspicion).
func (d *Detector) ProbeResult(target string, alive bool, now time.Time) {
	ms, ok := d.members[target]
	if !ok {
		return
	}
	if alive {
		if ms.state == Suspect {
			ms.state = Alive
			ms.suspectAt = time.Time{}
			d.version++
		} else if ms.state == Dead {
			// Direct evidence of life resurrects a dead member at its
			// current incarnation; gossip from the member itself will bump
			// the incarnation shortly after.
			ms.state = Alive
			d.version++
		}
		return
	}
	if ms.state == Alive {
		ms.state = Suspect
		ms.suspectAt = now
		d.version++
	}
}

// Absorb applies gossiped updates under SWIM's precedence rules:
//
//   - Alive overrides Alive/Suspect only with a strictly higher incarnation.
//   - Suspect overrides Alive at the same or higher incarnation, and Suspect
//     at a higher incarnation.
//   - Dead overrides everything at the same or higher incarnation.
//   - A claim about self in state Suspect or Dead is refuted by bumping
//     selfInc past the claim, which future gossip disseminates.
//
// Unknown members are inserted, which is also how joins propagate.
func (d *Detector) Absorb(updates []Update, now time.Time) {
	for _, u := range updates {
		if u.Member == "" {
			continue
		}
		if u.Member == d.cfg.Self {
			if u.State != Alive && u.Inc >= d.selfInc {
				d.selfInc = u.Inc + 1
				d.version++
			}
			continue
		}
		ms, ok := d.members[u.Member]
		if !ok {
			d.members[u.Member] = &memberState{state: u.State, inc: u.Inc}
			if u.State == Suspect {
				d.members[u.Member].suspectAt = now
			}
			d.version++
			continue
		}
		switch u.State {
		case Alive:
			if u.Inc > ms.inc {
				ms.inc = u.Inc
				if ms.state != Alive {
					ms.state = Alive
					ms.suspectAt = time.Time{}
				}
				d.version++
			}
		case Suspect:
			if (ms.state == Alive && u.Inc >= ms.inc) || (ms.state == Suspect && u.Inc > ms.inc) {
				ms.inc = u.Inc
				if ms.state != Suspect {
					ms.state = Suspect
					ms.suspectAt = now
				}
				d.version++
			}
		case Dead:
			if ms.state != Dead && u.Inc >= ms.inc {
				d.declareDead(u.Member, u.Inc)
			}
		}
	}
}

func (d *Detector) declareDead(member string, inc uint32) {
	ms := d.members[member]
	ms.state = Dead
	ms.inc = inc
	ms.suspectAt = time.Time{}
	d.version++
}

// Updates returns the full membership table (self first) for piggybacking on
// outgoing gossip. Full-table exchange is O(n) per message — fine at the
// cluster sizes streamd targets, and it makes convergence easy to reason
// about in the partition tests.
func (d *Detector) Updates() []Update {
	out := make([]Update, 0, len(d.members)+1)
	out = append(out, Update{Member: d.cfg.Self, State: Alive, Inc: d.selfInc})
	keys := make([]string, 0, len(d.members))
	for m := range d.members {
		keys = append(keys, m)
	}
	sort.Strings(keys)
	for _, m := range keys {
		ms := d.members[m]
		out = append(out, Update{Member: m, State: ms.state, Inc: ms.inc})
	}
	return out
}

// gossip message kinds carried in wire.TGossip payloads.
const (
	gossipPing    = 1 // probe: "are you alive" + piggybacked updates
	gossipAck     = 2 // reply to ping/pingReq + piggybacked updates
	gossipPingReq = 3 // indirect probe: "ping Target for me"
)

// gossipMsg is the TGossip payload: kind, sender, optional indirect target,
// and the piggybacked membership table.
//
// Encoding (all big-endian):
//
//	kind u8 | ok u8 | from u16+bytes | target u16+bytes |
//	nupdates u16 | nupdates × (state u8, inc u32, member u16+bytes)
type gossipMsg struct {
	Kind    byte
	Ok      bool // ack only: outcome of a relayed pingReq
	From    string
	Target  string // pingReq only: who to probe
	Updates []Update
}

func appendString(dst []byte, s string) []byte {
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func parseString(b []byte) (string, []byte, bool) {
	if len(b) < 2 {
		return "", nil, false
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	if len(b) < n {
		return "", nil, false
	}
	return string(b[:n]), b[n:], true
}

func (g *gossipMsg) encode(dst []byte) []byte {
	dst = append(dst, g.Kind)
	ok := byte(0)
	if g.Ok {
		ok = 1
	}
	dst = append(dst, ok)
	dst = appendString(dst, g.From)
	dst = appendString(dst, g.Target)
	dst = binary.BigEndian.AppendUint16(dst, uint16(len(g.Updates)))
	for _, u := range g.Updates {
		dst = append(dst, byte(u.State))
		dst = binary.BigEndian.AppendUint32(dst, u.Inc)
		dst = appendString(dst, u.Member)
	}
	return dst
}

func parseGossip(b []byte) (gossipMsg, bool) {
	var g gossipMsg
	if len(b) < 2 {
		return g, false
	}
	g.Kind = b[0]
	g.Ok = b[1] == 1
	b = b[2:]
	var ok bool
	if g.From, b, ok = parseString(b); !ok {
		return g, false
	}
	if g.Target, b, ok = parseString(b); !ok {
		return g, false
	}
	if len(b) < 2 {
		return g, false
	}
	n := int(binary.BigEndian.Uint16(b))
	b = b[2:]
	g.Updates = make([]Update, 0, n)
	for i := 0; i < n; i++ {
		if len(b) < 5 {
			return g, false
		}
		u := Update{State: State(b[0]), Inc: binary.BigEndian.Uint32(b[1:5])}
		b = b[5:]
		if u.Member, b, ok = parseString(b); !ok {
			return g, false
		}
		g.Updates = append(g.Updates, u)
	}
	return g, true
}
