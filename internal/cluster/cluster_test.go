package cluster_test

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"streamgpu/internal/cluster"
	"streamgpu/internal/dedup"
	"streamgpu/internal/fault"
	"streamgpu/internal/loadgen"
	"streamgpu/internal/server"
	"streamgpu/internal/server/wire"
	"streamgpu/internal/telemetry"
	"streamgpu/internal/testutil"
	"streamgpu/internal/workload"
)

// startCluster brings up n in-process nodes on ephemeral ports: node 0
// bootstraps, the rest join it, and the helper blocks until every node sees
// all n members and their rings agree. mod tweaks a node's config before
// start (fault injection, forwarding).
func startCluster(t *testing.T, n int, mod func(i int, cfg *cluster.Config)) ([]*cluster.Node, []*telemetry.Registry) {
	t.Helper()
	nodes := make([]*cluster.Node, 0, n)
	regs := make([]*telemetry.Registry, 0, n)
	var join []string
	for i := 0; i < n; i++ {
		reg := telemetry.New()
		cfg := cluster.Config{
			Addr:           "127.0.0.1:0",
			Join:           append([]string(nil), join...),
			RingSeed:       42,
			GossipSeed:     int64(1000 + i),
			GossipInterval: 15 * time.Millisecond,
			// Generous probe windows relative to the gossip interval: under
			// the race detector a loaded scheduler can stall an ack past the
			// default (one interval), and a false suspicion would move ring
			// ownership mid-test. Real crashes are detected by refused
			// connections, not timeouts, so these do not slow failover.
			PingTimeout:    150 * time.Millisecond,
			SuspectTimeout: 300 * time.Millisecond,
			Server:         server.Config{Linger: time.Millisecond},
			Metrics:        reg,
		}
		if mod != nil {
			mod(i, &cfg)
		}
		nd := cluster.NewNode(cfg)
		if err := nd.Start(); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nd.Close() })
		join = append(join, nd.Addr())
		nodes = append(nodes, nd)
		regs = append(regs, reg)
	}
	waitMembers(t, nodes, n)
	waitRingAgreement(t, nodes)
	return nodes, regs
}

// waitMembers blocks until every listed node's active view has want members.
func waitMembers(t *testing.T, nodes []*cluster.Node, want int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ok := true
		for _, nd := range nodes {
			if len(nd.Members()) != want {
				ok = false
				break
			}
		}
		if ok {
			return
		}
		if time.Now().After(deadline) {
			for _, nd := range nodes {
				t.Logf("%s sees %v", nd.Addr(), nd.Members())
			}
			t.Fatalf("cluster did not converge to %d members", want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitRingAgreement blocks until all nodes place a probe set of tenants
// identically (the ring rebuild can trail the membership view by one gossip
// interaction).
func waitRingAgreement(t *testing.T, nodes []*cluster.Node) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		agree := true
	probe:
		for tenant := uint32(0); tenant < 16; tenant++ {
			want := nodes[0].Owner(tenant)
			for _, nd := range nodes[1:] {
				if nd.Owner(tenant) != want {
					agree = false
					break probe
				}
			}
		}
		if agree {
			return
		}
		if time.Now().After(deadline) {
			t.Fatal("rings did not agree")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// tenantOwnedBy returns a tenant the ring places on owner.
func tenantOwnedBy(t *testing.T, nd *cluster.Node, owner string) uint32 {
	t.Helper()
	for tenant := uint32(1); tenant < 1<<17; tenant++ {
		if nd.Owner(tenant) == owner {
			return tenant
		}
	}
	t.Fatalf("no tenant maps to %s", owner)
	return 0
}

// cclient is a minimal protocol client for manual cluster sessions.
type cclient struct {
	t    *testing.T
	conn net.Conn
	fw   *wire.Writer
	fr   *wire.Reader
}

func dialNode(t *testing.T, addr string) *cclient {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { conn.Close() })
	return &cclient{t: t, conn: conn, fw: wire.NewWriter(conn), fr: wire.NewReader(conn, 8<<20)}
}

func (c *cclient) send(f wire.Frame) {
	c.t.Helper()
	if err := c.fw.Write(f); err != nil {
		c.t.Fatalf("send %s: %v", f.Type, err)
	}
	if err := c.fw.Flush(); err != nil {
		c.t.Fatalf("flush: %v", err)
	}
}

func (c *cclient) next() wire.Frame {
	c.t.Helper()
	c.conn.SetReadDeadline(time.Now().Add(30 * time.Second))
	f, err := c.fr.Next()
	if err != nil {
		c.t.Fatalf("next frame: %v", err)
	}
	return f
}

// serveDedup runs one owned session: chunks as individual requests, TEnd,
// reassembled archive back. Any verdict other than TResult fails the test.
func (c *cclient) serveDedup(tenant uint32, chunks ...[]byte) []byte {
	c.t.Helper()
	var archive bytes.Buffer
	for i, chunk := range chunks {
		c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: tenant, Seq: uint64(i), Payload: chunk})
		v := c.next()
		if v.Type != wire.TResult || v.Seq != uint64(i) {
			c.t.Fatalf("request %d: got %s seq %d", i, v.Type, v.Seq)
		}
		archive.Write(v.Payload)
	}
	c.send(wire.Frame{Type: wire.TEnd})
	for {
		f, err := c.fr.Next()
		if err == io.EOF {
			return archive.Bytes()
		}
		if err != nil {
			c.t.Fatalf("awaiting end: %v", err)
		}
		archive.Write(f.Payload)
		if f.Type == wire.TEnd {
			return archive.Bytes()
		}
	}
}

func restore(t *testing.T, archive []byte) []byte {
	t.Helper()
	var out bytes.Buffer
	if err := dedup.Restore(bytes.NewReader(archive), &out); err != nil {
		t.Fatalf("restore: %v", err)
	}
	return out.Bytes()
}

// TestRedirectVerdict: a node answers a TData for a tenant it does not own
// with TRedirect carrying the owner's address, and the owner then serves the
// session to a correct archive.
func TestRedirectVerdict(t *testing.T) {
	testutil.CheckLeaks(t)
	nodes, _ := startCluster(t, 2, nil)
	owner := nodes[1].Addr()
	tenant := tenantOwnedBy(t, nodes[0], owner)
	payload := workload.Generate(workload.Spec{Kind: workload.Large, Size: 32 << 10, Seed: 5})

	c := dialNode(t, nodes[0].Addr())
	c.send(wire.Frame{Type: wire.TData, Svc: wire.SvcDedup, Tenant: tenant, Seq: 0, Payload: payload})
	v := c.next()
	if v.Type != wire.TRedirect || v.Seq != 0 {
		t.Fatalf("got %s seq %d, want redirect seq 0", v.Type, v.Seq)
	}
	retryAfter, addr := wire.ParseRedirectInfo(v.Payload)
	if addr != owner {
		t.Fatalf("redirect to %q, want %q", addr, owner)
	}
	if retryAfter <= 0 {
		t.Fatal("redirect carries no retry-after hint")
	}

	oc := dialNode(t, addr)
	archive := oc.serveDedup(tenant, payload)
	if !bytes.Equal(restore(t, archive), payload) {
		t.Fatal("owner-served archive does not restore to the input")
	}
}

// TestClusterRouting: loadgen against the full node list completes every
// session with verified restores, and the per-node breakdown accounts for
// all accepted traffic.
func TestClusterRouting(t *testing.T) {
	testutil.CheckLeaks(t)
	nodes, _ := startCluster(t, 3, nil)
	addrs := []string{nodes[0].Addr(), nodes[1].Addr(), nodes[2].Addr()}

	rep, err := loadgen.Run(loadgen.Config{
		Addrs:     addrs,
		Clients:   6,
		Requests:  10,
		Tenants:   6,
		MinBytes:  1 << 10,
		MaxBytes:  8 << 10,
		Seed:      7,
		Retries:   4,
		Verify:    true,
		SkipCalib: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RestoreFailures != 0 {
		t.Fatalf("%d restore failures: %v", rep.RestoreFailures, rep.Errors)
	}
	if want := int64(6 * 10); rep.Accepted != want {
		t.Fatalf("accepted %d, want %d", rep.Accepted, want)
	}
	var sum int64
	for _, nr := range rep.Nodes {
		sum += nr.Accepted
	}
	if sum != rep.Accepted {
		t.Fatalf("per-node accepted %d does not sum to total %d", sum, rep.Accepted)
	}
}

// TestLoadgenFollowsRedirect: a client that dials the wrong node follows the
// TRedirect verdict to the owner. The two-address list with one tenant makes
// the first client's initial dial a guaranteed miss.
func TestLoadgenFollowsRedirect(t *testing.T) {
	testutil.CheckLeaks(t)
	nodes, _ := startCluster(t, 2, nil)
	owner := nodes[1].Addr()
	tenant := tenantOwnedBy(t, nodes[0], owner)

	rep, err := loadgen.Run(loadgen.Config{
		Addrs:       []string{nodes[0].Addr(), owner},
		Clients:     2,
		Requests:    6,
		Tenants:     1,
		FirstTenant: tenant,
		Seed:        11,
		Retries:     4,
		Verify:      true,
		SkipCalib:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RestoreFailures != 0 {
		t.Fatalf("%d restore failures: %v", rep.RestoreFailures, rep.Errors)
	}
	if rep.Accepted != 12 {
		t.Fatalf("accepted %d, want 12", rep.Accepted)
	}
	if rep.Redirects == 0 {
		t.Fatal("client dialed a non-owner yet followed no redirect")
	}
}

// TestClusterForward: with -forward, a non-owner node splices the session to
// the owner instead of redirecting — v1 clients never see TRedirect, and the
// hop shows up in the front node's forwarded-connections counter.
func TestClusterForward(t *testing.T) {
	testutil.CheckLeaks(t)
	nodes, regs := startCluster(t, 3, func(i int, cfg *cluster.Config) {
		cfg.Forward = true
	})
	owner := nodes[1].Addr()
	tenant := tenantOwnedBy(t, nodes[0], owner)

	rep, err := loadgen.Run(loadgen.Config{
		Addrs:       []string{nodes[0].Addr()}, // only the non-owner is dialed
		Clients:     2,
		Requests:    6,
		Tenants:     1,
		FirstTenant: tenant,
		Seed:        13,
		Retries:     4,
		Verify:      true,
		SkipCalib:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RestoreFailures != 0 {
		t.Fatalf("%d restore failures: %v", rep.RestoreFailures, rep.Errors)
	}
	if rep.Redirects != 0 {
		t.Fatal("forwarding cluster sent a redirect")
	}
	fwd := regs[0].Counter("cluster_forwarded_conns_total", telemetry.Labels{}).Value()
	if fwd < 2 {
		t.Fatalf("front node forwarded %d conns, want >= 2", fwd)
	}
}

// TestClusterWideDedup is the acceptance scenario: a block uploaded through
// node A is recognized as already seen when re-sent through node B. The two
// archives are byte-identical (the session writer, not the cluster store,
// decides archive contents) and both restore to the input — which also
// matches what sequential CompressSeq restores to.
func TestClusterWideDedup(t *testing.T) {
	testutil.CheckLeaks(t)
	nodes, _ := startCluster(t, 2, nil)
	addrA, addrB := nodes[0].Addr(), nodes[1].Addr()
	tenantA := tenantOwnedBy(t, nodes[0], addrA)
	tenantB := tenantOwnedBy(t, nodes[0], addrB)

	data := workload.Generate(workload.Spec{Kind: workload.Large, Size: 256 << 10, Seed: 21})
	var chunks [][]byte
	for rest := data; len(rest) > 0; {
		n := 48 << 10
		if n > len(rest) {
			n = len(rest)
		}
		chunks = append(chunks, rest[:n])
		rest = rest[n:]
	}

	var seq bytes.Buffer
	if _, err := dedup.CompressSeq(data, &seq, dedup.Options{}); err != nil {
		t.Fatal(err)
	}
	want := restore(t, seq.Bytes())
	if !bytes.Equal(want, data) {
		t.Fatal("CompressSeq does not round-trip (broken baseline)")
	}

	ca := dialNode(t, addrA)
	archiveA := ca.serveDedup(tenantA, chunks...)
	cb := dialNode(t, addrB)
	archiveB := cb.serveDedup(tenantB, chunks...)

	if !bytes.Equal(archiveA, archiveB) {
		t.Fatal("same stream served via two nodes produced different archives")
	}
	if got := restore(t, archiveA); !bytes.Equal(got, want) {
		t.Fatal("cluster-served archive does not restore to the CompressSeq baseline")
	}
	hits := nodes[0].StoreRef().RemoteHits() + nodes[1].StoreRef().RemoteHits()
	if hits == 0 {
		t.Fatal("re-sending the stream via node B scored no cluster-wide dedup hits")
	}
}

// TestNodeFaultKill: the node-granularity fault injector (internal/fault's
// KillAfterOps) crashes a member, and the survivors' failure detectors
// converge on its death.
func TestNodeFaultKill(t *testing.T) {
	testutil.CheckLeaks(t)
	nodes, _ := startCluster(t, 3, func(i int, cfg *cluster.Config) {
		if i == 2 {
			cfg.Faults = fault.Config{Seed: 9, KillAfterOps: 20}
		}
	})
	waitMembers(t, nodes[:2], 2)
	for _, nd := range nodes[:2] {
		for _, m := range nd.Members() {
			if m == nodes[2].Addr() {
				t.Fatalf("%s still lists the dead node", nd.Addr())
			}
		}
	}
}

// TestClusterFailover kills a node mid-stream via the fault injector while
// loadgen drives verified sessions against the full cluster: every session
// must complete on the survivors with clean restores, at least one client
// must have failed over a severed connection, and the survivors must agree
// the node is gone.
func TestClusterFailover(t *testing.T) {
	testutil.CheckLeaks(t)
	nodes, _ := startCluster(t, 3, func(i int, cfg *cluster.Config) {
		if i == 2 {
			// Background gossip burns ~2 ops per interval on this node, so the
			// kill lands a few hundred milliseconds in — after clients have
			// attached, while the run is still going.
			cfg.Faults = fault.Config{Seed: 9, KillAfterOps: 60}
		}
	})
	addrs := []string{nodes[0].Addr(), nodes[1].Addr(), nodes[2].Addr()}
	// Anchor the tenant range so the doomed node owns the first tenant:
	// clients on that tenant are connected to it when it dies.
	tenant := tenantOwnedBy(t, nodes[0], nodes[2].Addr())

	rep, err := loadgen.Run(loadgen.Config{
		Addrs:       addrs,
		Clients:     8,
		Requests:    200,
		Tenants:     3,
		FirstTenant: tenant,
		MinBytes:    1 << 10,
		MaxBytes:    4 << 10,
		Seed:        17,
		Retries:     6,
		Verify:      true,
		SkipCalib:   true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RestoreFailures != 0 {
		t.Fatalf("%d restore failures after node kill: %v", rep.RestoreFailures, rep.Errors)
	}
	if want := int64(8 * 200); rep.Accepted != want {
		t.Fatalf("accepted %d, want %d", rep.Accepted, want)
	}
	if rep.Failovers == 0 {
		t.Fatal("node died mid-run but no client failed over")
	}
	waitMembers(t, nodes[:2], 2)
}
