package cluster_test

import (
	"fmt"
	"testing"
	"time"

	"streamgpu/internal/cluster"
)

// step is one event fed to the detector under test: a gossiped update, a
// probe outcome, or the passage of time (Tick).
type step struct {
	// exactly one of these is set
	absorb  *cluster.Update
	probe   *probeStep
	advance time.Duration // advance the virtual clock, then Tick

	// expectations after the step (checked when member != "")
	member string
	state  cluster.State
	inc    uint32
}

type probeStep struct {
	target string
	alive  bool
}

// TestDetectorTransitions drives the SWIM state machine through its
// transition table with a virtual clock: alive→suspect→dead on probe
// failure and timeout, refutation by incarnation, and the precedence rules
// between gossiped claims.
func TestDetectorTransitions(t *testing.T) {
	const timeout = 100 * time.Millisecond
	up := func(m string, s cluster.State, inc uint32) *cluster.Update {
		return &cluster.Update{Member: m, State: s, Inc: inc}
	}
	cases := []struct {
		name  string
		steps []step
	}{
		{"probe failure suspects", []step{
			{absorb: up("b", cluster.Alive, 0), member: "b", state: cluster.Alive, inc: 0},
			{probe: &probeStep{"b", false}, member: "b", state: cluster.Suspect, inc: 0},
		}},
		{"suspect times out to dead", []step{
			{absorb: up("b", cluster.Alive, 0)},
			{probe: &probeStep{"b", false}, member: "b", state: cluster.Suspect},
			{advance: timeout + time.Millisecond, member: "b", state: cluster.Dead, inc: 0},
		}},
		{"suspect refreshed before timeout stays alive", []step{
			{absorb: up("b", cluster.Alive, 0)},
			{probe: &probeStep{"b", false}, member: "b", state: cluster.Suspect},
			{advance: timeout / 2},
			{probe: &probeStep{"b", true}, member: "b", state: cluster.Alive, inc: 0},
			{advance: timeout, member: "b", state: cluster.Alive, inc: 0},
		}},
		{"alive refutes suspicion only with higher incarnation", []step{
			{absorb: up("b", cluster.Alive, 0)},
			{probe: &probeStep{"b", false}, member: "b", state: cluster.Suspect, inc: 0},
			{absorb: up("b", cluster.Alive, 0), member: "b", state: cluster.Suspect, inc: 0},
			{absorb: up("b", cluster.Alive, 1), member: "b", state: cluster.Alive, inc: 1},
		}},
		{"suspect overrides alive at same incarnation", []step{
			{absorb: up("b", cluster.Alive, 2), member: "b", state: cluster.Alive, inc: 2},
			{absorb: up("b", cluster.Suspect, 2), member: "b", state: cluster.Suspect, inc: 2},
			{absorb: up("b", cluster.Suspect, 1), member: "b", state: cluster.Suspect, inc: 2},
		}},
		{"dead overrides alive and suspect", []step{
			{absorb: up("b", cluster.Alive, 3)},
			{absorb: up("b", cluster.Dead, 3), member: "b", state: cluster.Dead, inc: 3},
			{absorb: up("b", cluster.Suspect, 3), member: "b", state: cluster.Dead, inc: 3},
		}},
		{"stale dead claim is ignored", []step{
			{absorb: up("b", cluster.Alive, 5)},
			{absorb: up("b", cluster.Dead, 4), member: "b", state: cluster.Alive, inc: 5},
		}},
		{"higher incarnation resurrects the dead (rejoin)", []step{
			{absorb: up("b", cluster.Alive, 0)},
			{absorb: up("b", cluster.Dead, 0), member: "b", state: cluster.Dead},
			{absorb: up("b", cluster.Alive, 1), member: "b", state: cluster.Alive, inc: 1},
		}},
		{"direct probe success resurrects the dead", []step{
			{absorb: up("b", cluster.Alive, 0)},
			{absorb: up("b", cluster.Dead, 0), member: "b", state: cluster.Dead},
			{probe: &probeStep{"b", true}, member: "b", state: cluster.Alive, inc: 0},
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d := cluster.NewDetector(cluster.DetectorConfig{Self: "a", SuspectTimeout: timeout})
			now := time.Unix(1000, 0)
			for i, s := range tc.steps {
				switch {
				case s.absorb != nil:
					d.Absorb([]cluster.Update{*s.absorb}, now)
				case s.probe != nil:
					d.ProbeResult(s.probe.target, s.probe.alive, now)
				default:
					now = now.Add(s.advance)
					d.Tick(now)
				}
				if s.member == "" {
					continue
				}
				st, inc, ok := d.StateOf(s.member)
				if !ok {
					t.Fatalf("step %d: member %s unknown", i, s.member)
				}
				if st != s.state || inc != s.inc {
					t.Fatalf("step %d: %s is %s@%d, want %s@%d", i, s.member, st, inc, s.state, s.inc)
				}
			}
		})
	}
}

// TestSelfRefutation: a claim that self is suspect or dead bumps the local
// incarnation past the claim, so the refutation wins everywhere.
func TestSelfRefutation(t *testing.T) {
	d := cluster.NewDetector(cluster.DetectorConfig{Self: "a"})
	now := time.Unix(1000, 0)
	d.Absorb([]cluster.Update{{Member: "a", State: cluster.Suspect, Inc: 0}}, now)
	if got := d.Incarnation(); got != 1 {
		t.Fatalf("incarnation %d after suspect claim, want 1", got)
	}
	d.Absorb([]cluster.Update{{Member: "a", State: cluster.Dead, Inc: 5}}, now)
	if got := d.Incarnation(); got != 6 {
		t.Fatalf("incarnation %d after dead@5 claim, want 6", got)
	}
	// A stale claim below our incarnation needs no refutation.
	d.Absorb([]cluster.Update{{Member: "a", State: cluster.Suspect, Inc: 2}}, now)
	if got := d.Incarnation(); got != 6 {
		t.Fatalf("incarnation %d after stale claim, want 6", got)
	}
	// And the refutation is what we gossip.
	u := d.Updates()
	if u[0].Member != "a" || u[0].State != cluster.Alive || u[0].Inc != 6 {
		t.Fatalf("self update %+v, want alive@6", u[0])
	}
}

// TestDetectorDeterministic: same seed and event order → same probe
// sequence, which is what makes cluster tests reproducible.
func TestDetectorDeterministic(t *testing.T) {
	run := func() []string {
		d := cluster.NewDetector(cluster.DetectorConfig{Self: "self", Seed: 77})
		now := time.Unix(1000, 0)
		var ups []cluster.Update
		for i := 0; i < 5; i++ {
			ups = append(ups, cluster.Update{Member: fmt.Sprintf("m%d", i), State: cluster.Alive})
		}
		d.Absorb(ups, now)
		var seq []string
		for i := 0; i < 20; i++ {
			now = now.Add(time.Second)
			m, ok := d.Tick(now)
			if !ok {
				t.Fatal("no probe target")
			}
			seq = append(seq, m)
		}
		return seq
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("probe %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

// simNet is a virtual cluster for partition simulations: every node is a
// pure Detector, the "network" is a reachability predicate, and time is a
// shared virtual clock — no goroutines, no sockets, fully deterministic.
type simNet struct {
	names []string
	det   map[string]*cluster.Detector
	cut   func(a, b string) bool // true when the link a↔b is severed
	now   time.Time
}

func newSimNet(n int, seed int64, timeout time.Duration) *simNet {
	s := &simNet{det: make(map[string]*cluster.Detector), now: time.Unix(5000, 0)}
	for i := 0; i < n; i++ {
		s.names = append(s.names, fmt.Sprintf("n%d", i))
	}
	for i, name := range s.names {
		d := cluster.NewDetector(cluster.DetectorConfig{Self: name, Seed: seed + int64(i), SuspectTimeout: timeout})
		var ups []cluster.Update
		for _, other := range s.names {
			if other != name {
				ups = append(ups, cluster.Update{Member: other, State: cluster.Alive})
			}
		}
		d.Absorb(ups, s.now)
		s.det[name] = d
	}
	s.cut = func(a, b string) bool { return false }
	return s
}

// tick advances the virtual clock one gossip interval and runs one probe
// round on every node: direct ping, then up to two indirect ping-reqs, with
// full-table piggybacking on every successful exchange — the same protocol
// Node speaks over TCP, minus the sockets.
func (s *simNet) tick(interval time.Duration) {
	s.now = s.now.Add(interval)
	for _, name := range s.names {
		d := s.det[name]
		target, ok := d.Tick(s.now)
		if !ok {
			continue
		}
		alive := false
		if !s.cut(name, target) {
			s.exchange(name, target)
			alive = true
		} else {
			for _, h := range d.IndirectTargets(target, 2) {
				if s.cut(name, h) || s.cut(h, target) {
					continue
				}
				// Helper relays the ping and vouches; the ack piggybacks the
				// helper's table.
				s.exchange(h, target)
				s.exchange(name, h)
				alive = true
				break
			}
		}
		d.ProbeResult(target, alive, s.now)
	}
}

// exchange is one successful RPC: both ends absorb each other's tables.
func (s *simNet) exchange(a, b string) {
	ua, ub := s.det[a].Updates(), s.det[b].Updates()
	s.det[a].Absorb(ub, s.now)
	s.det[b].Absorb(ua, s.now)
}

// converged reports whether every node's active view equals want.
func (s *simNet) converged(want []string) bool {
	for _, name := range s.names {
		if _, ok := contains(want, name); !ok {
			continue // dead nodes' own views don't matter
		}
		got := s.det[name].Active()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
	}
	return true
}

func contains(list []string, s string) (int, bool) {
	for i, v := range list {
		if v == s {
			return i, true
		}
	}
	return -1, false
}

// TestPartitionSimulation: sever {n0,n1} from {n2,n3,n4}; each side must
// declare the other dead. Heal the link; the sides must rediscover each
// other through the dead-member probe rotation and incarnation refutation.
func TestPartitionSimulation(t *testing.T) {
	const interval = 10 * time.Millisecond
	const timeout = 40 * time.Millisecond
	for seed := int64(0); seed < 3; seed++ {
		s := newSimNet(5, 100+seed, timeout)
		sideA := map[string]bool{"n0": true, "n1": true}

		// Partition.
		s.cut = func(a, b string) bool { return sideA[a] != sideA[b] }
		for i := 0; i < 200; i++ {
			s.tick(interval)
			if s.sideConverged(t, sideA) {
				break
			}
		}
		if !s.sideConverged(t, sideA) {
			t.Fatalf("seed %d: views did not converge to the partition after 200 ticks", seed)
		}

		// Heal.
		s.cut = func(a, b string) bool { return false }
		all := append([]string(nil), s.names...)
		healed := false
		for i := 0; i < 400; i++ {
			s.tick(interval)
			if s.converged(all) {
				healed = true
				break
			}
		}
		if !healed {
			t.Fatalf("seed %d: cluster did not reconverge after heal", seed)
		}
	}
}

// sideConverged reports whether every node's active view is exactly its own
// partition side.
func (s *simNet) sideConverged(t *testing.T, sideA map[string]bool) bool {
	t.Helper()
	for _, name := range s.names {
		var want []string
		for _, m := range s.names {
			if sideA[m] == sideA[name] {
				want = append(want, m)
			}
		}
		got := s.det[name].Active()
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
	}
	return true
}

// TestPartitionMinority: a fully isolated single node suspects and buries
// everyone, then finds its way back when the network returns.
func TestPartitionMinority(t *testing.T) {
	const interval = 10 * time.Millisecond
	s := newSimNet(4, 55, 40*time.Millisecond)
	s.cut = func(a, b string) bool { return a == "n3" || b == "n3" }
	for i := 0; i < 200; i++ {
		s.tick(interval)
	}
	if got := s.det["n3"].Active(); len(got) != 1 || got[0] != "n3" {
		t.Fatalf("isolated node still sees %v", got)
	}
	for _, other := range []string{"n0", "n1", "n2"} {
		if st, _, ok := s.det[other].StateOf("n3"); !ok || st != cluster.Dead {
			t.Fatalf("%s sees n3 as %v, want dead", other, st)
		}
	}
	s.cut = func(a, b string) bool { return false }
	all := append([]string(nil), s.names...)
	for i := 0; i < 400; i++ {
		s.tick(interval)
		if s.converged(all) {
			return
		}
	}
	t.Fatal("cluster did not reabsorb the isolated node")
}
