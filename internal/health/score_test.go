package health

import (
	"math"
	"testing"
)

// TestScoreComponents drives the composite score through table-driven signal
// mixes: each signal only participates once it has data, and the weights
// renormalize over the present signals.
func TestScoreComponents(t *testing.T) {
	cases := []struct {
		name     string
		feed     func(s *Scoreboard)
		min, max float64
	}{
		{"no data is presumed healthy", func(s *Scoreboard) {}, 1, 1},
		{"clean window", func(s *Scoreboard) { feed(s, 0, 8, false) }, 1, 1},
		{"quarter fault rate", func(s *Scoreboard) {
			for i := 0; i < 8; i++ {
				s.Record(0, Route{Device: true}, i%4 == 0)
			}
		}, 0.74, 0.76},
		{"failing probes drag a clean window down", func(s *Scoreboard) {
			feed(s, 0, 8, false)
			// Out-of-band probe failures quarantine immediately; the score
			// must reflect both the probe EWMA and the window entries.
			s.RecordProbe(0, false)
		}, 0.3, 0.65},
		{"service at baseline scores full", func(s *Scoreboard) {
			s.SetBaseline(0, 1e-9)
			s.ObserveService(0, 1e-9*1024, 1024)
		}, 1, 1},
		{"service 4x slow scores a quarter on that signal", func(s *Scoreboard) {
			s.SetBaseline(0, 1e-9)
			for i := 0; i < 64; i++ { // let the EWMA converge
				s.ObserveService(0, 4e-9*1024, 1024)
			}
		}, 0.24, 0.30},
		{"faster than baseline is not healthier than healthy", func(s *Scoreboard) {
			s.SetBaseline(0, 1e-9)
			s.ObserveService(0, 0.25e-9*1024, 1024)
		}, 1, 1},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s := New(Config{Window: 16, MinSamples: 8, Threshold: 0.5})
			tc.feed(s)
			if got := s.Score(0); got < tc.min || got > tc.max {
				t.Fatalf("score = %v, want [%v, %v]", got, tc.min, tc.max)
			}
		})
	}
}

// TestHysteresisNoFlapOnBoundaryScore parks a device exactly in the
// hysteresis band (recovered above the quarantine threshold but below the
// re-admission score) and shows it neither re-admits early nor re-quarantines
// on the next wiggle — the band exists precisely so a boundary device cannot
// flap.
func TestHysteresisNoFlapOnBoundaryScore(t *testing.T) {
	var transitions int
	s := New(Config{
		Window: 8, MinSamples: 4, Threshold: 0.5,
		ProbeEvery: 1, ReadmitAfter: 2,
		QuarantineScore: 0.35, ReadmitScore: 0.9,
		OnTransition: func(int, bool) { transitions++ },
	})
	feed(s, 0, 8, true)
	if !s.Quarantined(0) || transitions != 1 {
		t.Fatalf("not quarantined after all-fault window (transitions %d)", transitions)
	}
	// Clean probes build a streak well past ReadmitAfter, but the window is
	// still majority-fault, so the score sits in the band below 0.9: the
	// device must stay quarantined — streak alone is not enough.
	for i := 0; i < 3; i++ {
		r := s.Route(0)
		if !r.Probe {
			t.Fatalf("probe %d: route = %+v", i, r)
		}
		s.Record(0, r, false)
		if !s.Quarantined(0) {
			t.Fatalf("re-admitted at probe %d with score %v still in the hysteresis band", i, s.Score(0))
		}
	}
	if transitions != 1 {
		t.Fatalf("device flapped: %d transitions", transitions)
	}
	// Enough clean probes push the score past the high-water mark: exactly
	// one re-admission fires, and the fresh window cannot instantly re-trip.
	for i := 0; i < 16 && s.Quarantined(0); i++ {
		s.Record(0, s.Route(0), false)
	}
	if s.Quarantined(0) {
		t.Fatalf("never re-admitted: score %v", s.Score(0))
	}
	if transitions != 2 {
		t.Fatalf("transitions = %d, want exactly 2 (one quarantine, one re-admission)", transitions)
	}
}

// TestReadmitAfterExactlyNCleanProbes pins the streak contract: with the
// score gate already satisfied, re-admission happens on clean probe N, not
// N-1, and a failed probe restarts the count.
func TestReadmitAfterExactlyNCleanProbes(t *testing.T) {
	const n = 3
	s := New(Config{
		Window: 32, MinSamples: 4, Threshold: 0.5,
		ProbeEvery: 1, ReadmitAfter: n,
		// A large window over mostly-clean history keeps the score above
		// ReadmitScore throughout, isolating the streak condition.
		ReadmitScore: 0.6,
	})
	feed(s, 0, 24, false)
	feed(s, 0, 4, true) // 4/28 clean history, then a fault burst
	// Force quarantine via a probe failure (the rate never trips 0.5).
	s.RecordProbe(0, false)
	if !s.Quarantined(0) {
		t.Fatal("failed diagnostic probe did not quarantine")
	}
	for i := 1; i < n; i++ {
		s.Record(0, s.Route(0), false)
		if !s.Quarantined(0) {
			t.Fatalf("re-admitted after only %d clean probes, want %d", i, n)
		}
	}
	s.Record(0, s.Route(0), false)
	if s.Quarantined(0) {
		t.Fatalf("not re-admitted after exactly %d clean probes (score %v)", n, s.Score(0))
	}
	if st := s.Snapshot()[0]; st.Readmits != 1 {
		t.Fatalf("readmits = %d, want 1", st.Readmits)
	}

	// Same again, but a failed probe mid-streak restarts the count.
	s.RecordProbe(0, false)
	if !s.Quarantined(0) {
		t.Fatal("second probe failure did not quarantine")
	}
	s.Record(0, s.Route(0), false)
	s.Record(0, s.Route(0), false)
	s.Record(0, s.Route(0), true) // streak broken at 2
	for i := 0; i < n-1; i++ {
		s.Record(0, s.Route(0), false)
		if !s.Quarantined(0) && i < n-2 {
			t.Fatalf("re-admitted %d probes after a broken streak", i+1)
		}
	}
	if !s.Quarantined(0) {
		// n-1 clean probes since the break: one short.
		t.Fatal("re-admitted one probe early after a broken streak")
	}
	s.Record(0, s.Route(0), false)
	if s.Quarantined(0) {
		t.Fatalf("not re-admitted %d clean probes after the break (score %v)", n, s.Score(0))
	}
}

// TestIdleScoreDecays parks a faulted (but not quarantined) device and shows
// Tick drifts its score back toward neutral: stale bad evidence must not pin
// a device's placement share forever, and ticks must not touch devices that
// saw traffic.
func TestIdleScoreDecays(t *testing.T) {
	s := New(Config{Devices: 2, Window: 8, MinSamples: 8, Threshold: 0.9, DecayFactor: 0.5})
	for i := 0; i < 8; i++ {
		s.Record(0, Route{Device: true}, i%2 == 0) // 50% faults, below the 0.9 threshold
		s.Record(1, Route{Device: true}, i%2 == 0)
	}
	start := s.Score(0)
	if start >= 0.75 {
		t.Fatalf("setup: faulted score = %v, want < 0.75", start)
	}
	prev := start
	for tick := 0; tick < 8; tick++ {
		s.Record(1, Route{Device: true}, tick%2 == 0) // device 1 stays busy
		s.Tick()
		got := s.Score(0)
		if got < prev-1e-12 {
			t.Fatalf("tick %d: idle score fell %v -> %v", tick, prev, got)
		}
		prev = got
	}
	if prev < 1 {
		t.Fatalf("idle device never decayed to neutral: %v (window should have drained)", prev)
	}
	if busy := s.Score(1); math.Abs(busy-start) > 0.25 {
		t.Fatalf("busy device's score moved under idle decay: %v -> %v", start, busy)
	}

	// Service slowness decays too: a device observed 4x slow drifts back
	// toward 1 while idle instead of being condemned by one bad spell.
	s2 := New(Config{DecayFactor: 0.5})
	s2.SetBaseline(0, 1e-9)
	for i := 0; i < 64; i++ {
		s2.ObserveService(0, 4e-9*1024, 1024)
	}
	low := s2.Score(0)
	for i := 0; i < 12; i++ {
		s2.Tick()
	}
	if got := s2.Score(0); got <= low || got < 0.95 {
		t.Fatalf("slow-service score did not decay while idle: %v -> %v", low, got)
	}
}

// TestHeterogeneousSpecNormalization is the fleet-fairness property: a slow
// device serving exactly at its (slow) baseline must score as healthy as a
// fast device at its baseline, while a fast device degraded to the slow
// device's absolute speed scores poorly — the score measures deviation from
// expectation, not absolute speed.
func TestHeterogeneousSpecNormalization(t *testing.T) {
	const (
		fastPerByte = 1e-9
		slowPerByte = 4e-9 // an honest quarter-speed part
	)
	s := New(Config{Devices: 3})
	s.SetBaseline(0, fastPerByte)
	s.SetBaseline(1, slowPerByte)
	s.SetBaseline(2, fastPerByte)
	for i := 0; i < 64; i++ {
		s.ObserveService(0, fastPerByte*8192, 8192) // fast, healthy
		s.ObserveService(1, slowPerByte*8192, 8192) // slow, healthy
		s.ObserveService(2, slowPerByte*8192, 8192) // fast spec degraded 4x
	}
	if fast, slow := s.Score(0), s.Score(1); fast != slow || slow != 1 {
		t.Fatalf("slow-but-healthy device penalized: fast %v, slow %v", fast, slow)
	}
	if degraded := s.Score(2); degraded > 0.5 {
		t.Fatalf("degraded fast device not penalized: %v", degraded)
	}
}

// TestPlaceWeightsByScore checks the smooth-WRR contract: share tracks
// score, order is deterministic, and a quarantined device receives exactly
// its probe cadence.
func TestPlaceWeightsByScore(t *testing.T) {
	s := New(Config{Devices: 2, Window: 8, MinSamples: 8, Threshold: 0.9})
	// Device 1 at ~half score via a half-faulted window (threshold 0.9
	// keeps it un-quarantined).
	for i := 0; i < 8; i++ {
		s.Record(1, Route{Device: true}, i%2 == 0)
	}
	counts := map[int]int{}
	for i := 0; i < 300; i++ {
		dev, r := s.Place()
		if !r.Device || r.Probe {
			t.Fatalf("place %d: route = %+v", i, r)
		}
		counts[dev]++
	}
	// score(0)=1 (no data), score(1)=0.5 → weights 101 vs 51 → ~2:1.
	ratio := float64(counts[0]) / float64(counts[1])
	if ratio < 1.6 || ratio > 2.4 {
		t.Fatalf("placement ratio = %v (counts %v), want ~2:1", ratio, counts)
	}

	// Quarantine device 1: placement must send it exactly every
	// ProbeEvery-th opportunity as a probe and everything else to device 0.
	s2 := New(Config{Devices: 2, Window: 4, MinSamples: 4, Threshold: 0.5, ProbeEvery: 4, ReadmitAfter: 99})
	feed(s2, 1, 4, true)
	if !s2.Quarantined(1) {
		t.Fatal("setup: device 1 not quarantined")
	}
	probes, normal := 0, 0
	for i := 0; i < 40; i++ {
		dev, r := s2.Place()
		switch {
		case r.Probe:
			if dev != 1 {
				t.Fatalf("probe routed to healthy device %d", dev)
			}
			probes++
		case r.Device:
			if dev != 0 {
				t.Fatalf("normal batch on quarantined device %d", dev)
			}
			normal++
		default:
			t.Fatal("CPU fallback with a healthy device in the pool")
		}
	}
	if probes != 10 || normal != 30 {
		t.Fatalf("probes = %d, normal = %d; want 10/30 at ProbeEvery=4 over 40 placements", probes, normal)
	}
}

// TestPlaceAllQuarantined: with the whole pool quarantined, Place yields the
// CPU fallback between probes and never wedges.
func TestPlaceAllQuarantined(t *testing.T) {
	s := New(Config{Devices: 2, Window: 4, MinSamples: 4, Threshold: 0.5, ProbeEvery: 3, ReadmitAfter: 99})
	feed(s, 0, 4, true)
	feed(s, 1, 4, true)
	cpu, probes := 0, map[int]int{}
	for i := 0; i < 30; i++ {
		dev, r := s.Place()
		if r.Probe {
			probes[dev]++
			continue
		}
		if r.Device {
			t.Fatalf("normal batch placed on quarantined device %d", dev)
		}
		cpu++
	}
	if cpu == 0 || probes[0] == 0 || probes[1] == 0 {
		t.Fatalf("cpu = %d, probes = %v: want CPU fallback plus probes on both devices", cpu, probes)
	}
}
