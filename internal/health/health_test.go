package health

import (
	"sync"
	"testing"
)

// feed records n device-routed outcomes for dev.
func feed(s *Scoreboard, dev, n int, faulted bool) {
	for i := 0; i < n; i++ {
		s.Record(dev, Route{Device: true}, faulted)
	}
}

func TestQuarantineTripsOnFaultRate(t *testing.T) {
	s := New(Config{Window: 10, MinSamples: 10, Threshold: 0.5})
	feed(s, 0, 5, false)
	feed(s, 0, 4, true)
	if s.Quarantined(0) {
		t.Fatal("quarantined at 4/9 faults before MinSamples")
	}
	s.Record(0, Route{Device: true}, true) // 5/10 = threshold
	if !s.Quarantined(0) {
		t.Fatal("not quarantined at 5/10 faults with threshold 0.5")
	}
	if got := s.Snapshot()[0]; got.Quarantines != 1 || got.Ops != 10 || got.Faults != 5 {
		t.Fatalf("snapshot = %+v", got)
	}
}

func TestHealthyDeviceStaysBelowThreshold(t *testing.T) {
	s := New(Config{Window: 10, MinSamples: 4, Threshold: 0.5})
	for i := 0; i < 100; i++ {
		s.Record(0, Route{Device: true}, i%4 == 0) // 25% fault rate
	}
	if s.Quarantined(0) {
		t.Fatal("quarantined at 25% with threshold 50%")
	}
}

func TestSlidingWindowForgets(t *testing.T) {
	s := New(Config{Window: 8, MinSamples: 8, Threshold: 0.5})
	feed(s, 0, 3, true)   // old faults...
	feed(s, 0, 20, false) // ...evicted by a clean run
	s.Record(0, Route{Device: true}, true)
	if s.Quarantined(0) {
		t.Fatal("evicted faults still count")
	}
}

func TestQuarantineRoutingAndReadmission(t *testing.T) {
	var transitions []bool
	s := New(Config{
		Window: 4, MinSamples: 4, Threshold: 0.5,
		ProbeEvery: 3, ReadmitAfter: 2,
		OnTransition: func(dev int, q bool) { transitions = append(transitions, q) },
	})
	feed(s, 0, 4, true)
	if !s.Quarantined(0) {
		t.Fatal("not quarantined after all-fault window")
	}

	// While quarantined: two reroutes, then a probe, repeating.
	for cycle := 0; cycle < 2; cycle++ {
		for i := 0; i < 2; i++ {
			if r := s.Route(0); r.Device {
				t.Fatalf("cycle %d: batch %d routed to quarantined device", cycle, i)
			}
		}
		r := s.Route(0)
		if !r.Device || !r.Probe {
			t.Fatalf("cycle %d: third batch not a probe: %+v", cycle, r)
		}
		s.Record(0, r, false)
	}
	// Two clean probes with ReadmitAfter=2 → re-admitted.
	if s.Quarantined(0) {
		t.Fatal("not re-admitted after 2 clean probes")
	}
	if r := s.Route(0); !r.Device || r.Probe {
		t.Fatalf("healthy route = %+v", r)
	}
	st := s.Snapshot()[0]
	if st.Quarantines != 1 || st.Readmits != 1 {
		t.Fatalf("snapshot = %+v", st)
	}
	if len(transitions) != 2 || transitions[0] != true || transitions[1] != false {
		t.Fatalf("transitions = %v, want [true false]", transitions)
	}
	// The window was reset on re-admission: one fault must not re-trip.
	s.Record(0, Route{Device: true}, true)
	if s.Quarantined(0) {
		t.Fatal("pre-quarantine history re-tripped after re-admission")
	}
}

func TestFailedProbeResetsStreak(t *testing.T) {
	s := New(Config{Window: 4, MinSamples: 4, Threshold: 0.5, ProbeEvery: 1, ReadmitAfter: 2})
	feed(s, 0, 4, true)
	probe := func(faulted bool) {
		r := s.Route(0)
		if !r.Probe {
			t.Fatalf("expected probe with ProbeEvery=1, got %+v", r)
		}
		s.Record(0, r, faulted)
	}
	probe(false)
	probe(true) // streak broken
	probe(false)
	if !s.Quarantined(0) {
		t.Fatal("re-admitted with a broken clean streak")
	}
	probe(false)
	if s.Quarantined(0) {
		t.Fatal("not re-admitted after 2 consecutive clean probes")
	}
}

func TestDevicesIndependent(t *testing.T) {
	s := New(Config{Devices: 3, Window: 4, MinSamples: 4, Threshold: 0.5})
	feed(s, 1, 4, true)
	if s.Quarantined(0) || !s.Quarantined(1) || s.Quarantined(2) {
		t.Fatalf("quarantine leaked across devices: %v %v %v",
			s.Quarantined(0), s.Quarantined(1), s.Quarantined(2))
	}
	if got := s.QuarantinedCount(); got != 1 {
		t.Fatalf("QuarantinedCount = %d, want 1", got)
	}
}

func TestReroutedBatchesNotRecorded(t *testing.T) {
	s := New(Config{Window: 4, MinSamples: 4, Threshold: 0.5})
	for i := 0; i < 10; i++ {
		s.Record(0, Route{}, true) // CPU outcomes say nothing about the device
	}
	if s.Quarantined(0) {
		t.Fatal("rerouted outcomes fed the window")
	}
	if st := s.Snapshot()[0]; st.Ops != 0 {
		t.Fatalf("rerouted outcomes counted as ops: %+v", st)
	}
}

func TestOutOfRangeDeviceClamps(t *testing.T) {
	s := New(Config{Devices: 2})
	s.Record(-1, Route{Device: true}, false)
	s.Record(99, Route{Device: true}, false)
	if got := s.Snapshot()[0].Ops; got != 2 {
		t.Fatalf("clamped ops = %d, want 2", got)
	}
}

func TestConcurrentAccess(t *testing.T) {
	s := New(Config{Devices: 4, Window: 16, MinSamples: 8, Threshold: 0.5, ProbeEvery: 2, ReadmitAfter: 2})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				dev := (g + i) % 4
				r := s.Route(dev)
				s.Record(dev, r, i%3 == 0)
			}
		}()
	}
	wg.Wait()
	var ops uint64
	for _, st := range s.Snapshot() {
		ops += st.Ops
	}
	if ops == 0 {
		t.Fatal("no ops recorded")
	}
}
