// Package health is the per-device health model behind the serving layer's
// graceful degradation and placement decisions. It started as a fault-rate
// scoreboard — watch every batch outcome, quarantine a device whose windowed
// fault rate trips a threshold, reroute its work to the CPU fallback paths
// (which the dedup and mandel fault-tolerance layers already prove
// bit-identical), re-admit after a run of clean probes — and now combines
// three signals into one per-device score in [0, 1]:
//
//   - the windowed fault rate (batch outcomes and probe outcomes both age
//     through the same ring, so clean probes genuinely repair the rate),
//   - diagnostic probe results (internal/diag's suite, fed via RecordProbe),
//   - observed service time against a per-device baseline (SetBaseline from
//     the spec's ServiceSecondsHint for heterogeneous fleets, self-calibrated
//     otherwise), so a device that merely *is* slow scores healthy while a
//     device that *became* slow bleeds score.
//
// The score drives two decisions with hysteresis between them: quarantine
// enters at or below QuarantineScore (or on the legacy fault-rate threshold,
// or immediately on a failed diagnostic probe) and exits only when a clean
// probe streak meets ReadmitAfter AND the score has recovered past
// ReadmitScore — a boundary-score device cannot flap. Place() spreads
// batches across healthy devices by smooth weighted round-robin on their
// scores, so a degrading device bleeds share before it ever trips
// quarantine.
//
// This is the CrystalGPU lesson applied to the serving stack: a degraded
// accelerator should cost throughput, not correctness or availability, and
// the routing decision should be automatic and reversible. Windows are
// op-counted rather than wall-clocked so every decision is a pure function
// of the outcome sequence — deterministic under the chaos harness's seeded
// fault schedules (idle decay advances only on explicit Tick calls, for the
// same reason).
//
// All methods are safe for concurrent use: every pipeline worker replica
// consults one shared Scoreboard.
package health

import "sync"

// svcAlpha is the EWMA weight of one new service-time observation.
const svcAlpha = 0.25

// probeAlpha is the EWMA weight of one new probe outcome.
const probeAlpha = 0.3

// Config sizes a Scoreboard. The zero value tracks one device with the
// documented defaults.
type Config struct {
	// Devices is the number of devices tracked (default 1).
	Devices int
	// Window is the sliding window of recent per-device batch outcomes the
	// fault rate is computed over (default 32).
	Window int
	// MinSamples is the minimum number of outcomes in the window before the
	// rate (or the composite score) can trip quarantine — a single early
	// fault must not condemn a device (default 8).
	MinSamples int
	// Threshold is the windowed fault rate at or above which a device is
	// quarantined (default 0.5).
	Threshold float64
	// ProbeEvery routes every Nth batch of a quarantined device to the
	// device anyway as a health probe; the rest go to the CPU (default 8).
	ProbeEvery int
	// ReadmitAfter is the number of consecutive clean probes required to
	// re-admit a quarantined device (default 3). Re-admission additionally
	// requires the score to have recovered past ReadmitScore.
	ReadmitAfter int
	// FaultWeight, ProbeWeight and ServiceWeight blend the three signals
	// into the score; signals with no data yet drop out and the rest
	// renormalize (defaults 0.5, 0.25, 0.25).
	FaultWeight   float64
	ProbeWeight   float64
	ServiceWeight float64
	// QuarantineScore quarantines a device whose composite score falls to
	// or below it once MinSamples is met (default 0.35).
	QuarantineScore float64
	// ReadmitScore is the score a quarantined device must recover past
	// before a clean probe streak may re-admit it (default 0.6). Keeping it
	// above QuarantineScore is the hysteresis band.
	ReadmitScore float64
	// DecayFactor is how fast an idle device's score drifts back toward
	// neutral per Tick, in (0, 1): the per-Tick multiplier on its distance
	// from healthy (default 0.5; smaller decays faster).
	DecayFactor float64
	// OnTransition, when set, is called (outside the scoreboard lock) after
	// a device is quarantined or re-admitted — the server's metrics hook.
	OnTransition func(dev int, quarantined bool)
}

func (c Config) devices() int {
	if c.Devices <= 0 {
		return 1
	}
	return c.Devices
}

func (c Config) window() int {
	if c.Window <= 0 {
		return 32
	}
	return c.Window
}

func (c Config) minSamples() int {
	if c.MinSamples <= 0 {
		return 8
	}
	if c.MinSamples > c.window() {
		return c.window()
	}
	return c.MinSamples
}

func (c Config) threshold() float64 {
	if c.Threshold <= 0 {
		return 0.5
	}
	return c.Threshold
}

func (c Config) probeEvery() int {
	if c.ProbeEvery <= 0 {
		return 8
	}
	return c.ProbeEvery
}

func (c Config) readmitAfter() int {
	if c.ReadmitAfter <= 0 {
		return 3
	}
	return c.ReadmitAfter
}

func (c Config) faultWeight() float64 {
	if c.FaultWeight <= 0 {
		return 0.5
	}
	return c.FaultWeight
}

func (c Config) probeWeight() float64 {
	if c.ProbeWeight <= 0 {
		return 0.25
	}
	return c.ProbeWeight
}

func (c Config) serviceWeight() float64 {
	if c.ServiceWeight <= 0 {
		return 0.25
	}
	return c.ServiceWeight
}

func (c Config) quarantineScore() float64 {
	if c.QuarantineScore <= 0 {
		return 0.35
	}
	return c.QuarantineScore
}

func (c Config) readmitScore() float64 {
	if c.ReadmitScore <= 0 {
		return 0.6
	}
	return c.ReadmitScore
}

func (c Config) decayFactor() float64 {
	if c.DecayFactor <= 0 || c.DecayFactor >= 1 {
		return 0.5
	}
	return c.DecayFactor
}

// Route is the scoreboard's verdict for one batch.
type Route struct {
	// Device: run the batch on its device. False reroutes it to the CPU
	// fallback path.
	Device bool
	// Probe marks a device-routed batch from a quarantined device — its
	// outcome feeds the re-admission streak as well as the fault window.
	Probe bool
}

// device is one device's tracked state.
type device struct {
	outcomes []bool // ring buffer of recent outcomes, true = fault
	next     int    // ring write index
	filled   int    // live entries in the ring
	faults   int    // faults among live entries

	quarantined bool
	skips       int // batches rerouted since the last probe
	cleanProbes int // consecutive clean probes while quarantined

	probeHealth  float64 // EWMA of probe outcomes, 1 = all passing
	probeSamples int     // probe outcomes observed (0 = signal absent)

	baseline   float64 // expected service seconds per byte (0 = self-calibrate)
	svcRatio   float64 // EWMA of observed/baseline service time
	svcSamples int     // service observations (0 = signal absent)

	opsSinceTick int // activity marker for idle decay
	wrr          int // smooth weighted round-robin accumulator

	totalOps    uint64
	totalFaults uint64
	totalProbes uint64
	probeFails  uint64
	quarantines uint64
	readmits    uint64
}

// faultRate is the windowed fault rate; zero until the window has entries.
func (d *device) faultRate() float64 {
	if d.filled == 0 {
		return 0
	}
	return float64(d.faults) / float64(d.filled)
}

// record pushes one outcome into the sliding window.
func (d *device) record(faulted bool) {
	if d.filled == len(d.outcomes) {
		if d.outcomes[d.next] {
			d.faults--
		}
	} else {
		d.filled++
	}
	d.outcomes[d.next] = faulted
	if faulted {
		d.faults++
	}
	d.next = (d.next + 1) % len(d.outcomes)
}

// decayWindow is idle decay's window step: forgive the oldest fault while
// any remain (the rate falls monotonically toward 0), then shed clean
// entries one per tick so a long-idle device eventually returns to "no
// recent evidence" — presumed healthy — instead of pinning a stale rate.
func (d *device) decayWindow() {
	start := d.next - d.filled + len(d.outcomes)
	if d.faults > 0 {
		for k := 0; k < d.filled; k++ {
			idx := (start + k) % len(d.outcomes)
			if d.outcomes[idx] {
				d.outcomes[idx] = false
				d.faults--
				return
			}
		}
	}
	if d.filled > 0 {
		d.filled--
	}
}

// probeObserve folds one probe outcome into the probe-health EWMA.
func (d *device) probeObserve(pass bool) {
	x := 0.0
	if pass {
		x = 1.0
	}
	if d.probeSamples == 0 {
		d.probeHealth = x
	} else {
		d.probeHealth = probeAlpha*x + (1-probeAlpha)*d.probeHealth
	}
	d.probeSamples++
}

// score blends the signals that have data into [0, 1]; a device nothing has
// been observed about is presumed healthy.
func (d *device) score(cfg Config) float64 {
	num, den := 0.0, 0.0
	if d.filled > 0 {
		num += cfg.faultWeight() * (1 - d.faultRate())
		den += cfg.faultWeight()
	}
	if d.probeSamples > 0 {
		num += cfg.probeWeight() * d.probeHealth
		den += cfg.probeWeight()
	}
	if d.svcSamples > 0 {
		h := 1.0
		if d.svcRatio > 1 {
			h = 1 / d.svcRatio
		}
		num += cfg.serviceWeight() * h
		den += cfg.serviceWeight()
	}
	if den == 0 {
		return 1
	}
	return num / den
}

// reset clears the windowed evidence (after re-admission the device starts
// with a clean slate — its pre-quarantine history must not re-trip it
// instantly). The service baseline and ratio persist: how fast the device is
// has nothing to do with the quarantine episode ending.
func (d *device) reset() {
	for i := range d.outcomes {
		d.outcomes[i] = false
	}
	d.next, d.filled, d.faults = 0, 0, 0
	d.probeHealth, d.probeSamples = 0, 0
}

// Scoreboard tracks per-device health and quarantine state.
type Scoreboard struct {
	cfg       Config
	mu        sync.Mutex
	devs      []*device
	probeScan int // rotating start for Place's quarantined-probe fairness
}

// New builds a scoreboard from cfg.
func New(cfg Config) *Scoreboard {
	s := &Scoreboard{cfg: cfg, devs: make([]*device, cfg.devices())}
	for i := range s.devs {
		s.devs[i] = &device{outcomes: make([]bool, cfg.window())}
	}
	return s
}

// Devices returns the tracked device count.
func (s *Scoreboard) Devices() int { return len(s.devs) }

// dev clamps an out-of-range index to device 0 rather than panicking — the
// router's modulo should make this unreachable, but a scoreboard must never
// take the serving path down.
func (s *Scoreboard) dev(i int) *device {
	if i < 0 || i >= len(s.devs) {
		return s.devs[0]
	}
	return s.devs[i]
}

// devIndex is dev's inverse: the clamped index, for transition callbacks.
func (s *Scoreboard) devIndex(i int) int {
	if i < 0 || i >= len(s.devs) {
		return 0
	}
	return i
}

// Route decides where device i's next batch runs: healthy devices take
// everything; quarantined devices take only every ProbeEvery-th batch, as a
// probe. This is the blind-placement path — Place makes the score-weighted
// decision for the whole pool.
func (s *Scoreboard) Route(i int) Route {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.dev(i)
	if !d.quarantined {
		return Route{Device: true}
	}
	d.skips++
	if d.skips >= s.cfg.probeEvery() {
		d.skips = 0
		return Route{Device: true, Probe: true}
	}
	return Route{}
}

// Place picks the device for the next batch across the whole pool.
// Quarantined devices receive only their periodic probe batch (returned
// with Probe set); everything else spreads across healthy devices by smooth
// weighted round-robin on their scores — a device at score 0.5 gets half
// the share of a device at 1.0, so a degrading device bleeds load before it
// ever trips quarantine, and a slow-but-healthy device keeps a share
// proportional to what it can actually serve. dev = -1 with a zero Route
// means nothing can take the batch (every device quarantined, no probe
// due): the caller reroutes to the CPU.
func (s *Scoreboard) Place() (dev int, r Route) {
	s.mu.Lock()
	defer s.mu.Unlock()
	// Probe duty first: quarantined devices count placement opportunities
	// as skips and take every ProbeEvery-th as their probe. The scan start
	// rotates so two quarantined devices cannot shadow each other.
	due := -1
	for k := 0; k < len(s.devs); k++ {
		i := (s.probeScan + k) % len(s.devs)
		d := s.devs[i]
		if !d.quarantined {
			continue
		}
		d.skips++
		if due == -1 && d.skips >= s.cfg.probeEvery() {
			due = i
		}
	}
	if due >= 0 {
		s.devs[due].skips = 0
		s.probeScan = (due + 1) % len(s.devs)
		return due, Route{Device: true, Probe: true}
	}
	best, total := -1, 0
	for i, d := range s.devs {
		if d.quarantined {
			continue
		}
		w := 1 + int(d.score(s.cfg)*100)
		d.wrr += w
		total += w
		if best == -1 || d.wrr > s.devs[best].wrr {
			best = i
		}
	}
	if best == -1 {
		return -1, Route{}
	}
	s.devs[best].wrr -= total
	return best, Route{Device: true}
}

// Record feeds the outcome of a device-routed batch back (r as returned by
// Route or Place; rerouted batches are not recorded — the CPU path says
// nothing about the device). faulted marks any fault-injector-surfaced error
// during the batch: an absorbed retry, a stage degraded to the CPU, or
// device loss. Probe outcomes land in the fault window like any other device
// op — that is what lets a healed device's windowed rate actually recover —
// and additionally feed the probe EWMA and the re-admission streak.
func (s *Scoreboard) Record(i int, r Route, faulted bool) {
	if !r.Device {
		return
	}
	var fire func(int, bool)
	s.mu.Lock()
	d := s.dev(i)
	d.totalOps++
	if faulted {
		d.totalFaults++
	}
	d.opsSinceTick++
	d.record(faulted)
	if r.Probe {
		d.totalProbes++
		if faulted {
			d.probeFails++
		}
		d.probeObserve(!faulted)
	}
	switch {
	case d.quarantined && r.Probe:
		if s.probeWhileQuarantinedLocked(d, !faulted) {
			fire = s.cfg.OnTransition
		}
	case !d.quarantined:
		if s.maybeQuarantineLocked(d) {
			fire = s.cfg.OnTransition
		}
	}
	quarantined := d.quarantined
	s.mu.Unlock()
	if fire != nil {
		fire(s.devIndex(i), quarantined)
	}
}

// RecordProbe feeds one out-of-band diagnostic probe result (internal/diag's
// suite, run by streamd's background prober or a test). A failed probe
// quarantines a healthy device immediately — a correctness or bandwidth
// probe failing is decisive evidence, not a sample — and a passing probe
// feeds a quarantined device's re-admission streak exactly like an in-band
// probe batch.
func (s *Scoreboard) RecordProbe(i int, pass bool) {
	var fire func(int, bool)
	s.mu.Lock()
	d := s.dev(i)
	d.totalProbes++
	if !pass {
		d.probeFails++
	}
	d.opsSinceTick++
	d.record(!pass)
	d.probeObserve(pass)
	if d.quarantined {
		if s.probeWhileQuarantinedLocked(d, pass) {
			fire = s.cfg.OnTransition
		}
	} else if !pass {
		d.quarantined = true
		d.quarantines++
		d.cleanProbes = 0
		d.skips = 0
		fire = s.cfg.OnTransition
	}
	quarantined := d.quarantined
	s.mu.Unlock()
	if fire != nil {
		fire(s.devIndex(i), quarantined)
	}
}

// probeWhileQuarantinedLocked folds one probe outcome into a quarantined
// device's re-admission state; it reports whether the device was re-admitted
// (the caller fires OnTransition outside the lock).
func (s *Scoreboard) probeWhileQuarantinedLocked(d *device, pass bool) bool {
	if !pass {
		d.cleanProbes = 0
		return false
	}
	d.cleanProbes++
	if d.cleanProbes >= s.cfg.readmitAfter() && d.score(s.cfg) >= s.cfg.readmitScore() {
		d.quarantined = false
		d.readmits++
		d.reset()
		d.opsSinceTick++
		return true
	}
	return false
}

// maybeQuarantineLocked applies the entry rules to a healthy device; it
// reports whether the device was quarantined.
func (s *Scoreboard) maybeQuarantineLocked(d *device) bool {
	if d.filled < s.cfg.minSamples() {
		return false
	}
	if d.faultRate() < s.cfg.threshold() && d.score(s.cfg) > s.cfg.quarantineScore() {
		return false
	}
	d.quarantined = true
	d.quarantines++
	d.cleanProbes = 0
	d.skips = 0
	return true
}

// SetBaseline declares device i's expected service seconds per byte — the
// spec-derived normalization that keeps a slow-but-healthy device from
// scoring as a degraded fast one on a heterogeneous fleet. Without a
// baseline the first observation self-calibrates.
func (s *Scoreboard) SetBaseline(i int, secondsPerByte float64) {
	if secondsPerByte <= 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dev(i).baseline = secondsPerByte
}

// ObserveService feeds one batch's observed service time (virtual seconds
// for n payload bytes) into device i's service-health EWMA. A device
// serving at its baseline scores 1 on this signal; one serving k× slower
// scores 1/k.
func (s *Scoreboard) ObserveService(i int, seconds float64, bytes int) {
	if seconds <= 0 || bytes <= 0 {
		return
	}
	var fire func(int, bool)
	s.mu.Lock()
	d := s.dev(i)
	perByte := seconds / float64(bytes)
	if d.baseline <= 0 {
		d.baseline = perByte
	}
	ratio := perByte / d.baseline
	if d.svcSamples == 0 {
		d.svcRatio = ratio
	} else {
		d.svcRatio = svcAlpha*ratio + (1-svcAlpha)*d.svcRatio
	}
	d.svcSamples++
	d.opsSinceTick++
	if !d.quarantined && s.maybeQuarantineLocked(d) {
		fire = s.cfg.OnTransition
	}
	quarantined := d.quarantined
	s.mu.Unlock()
	if fire != nil {
		fire(s.devIndex(i), quarantined)
	}
}

// Tick advances the idle-decay clock: a device that saw no activity since
// the previous Tick sheds its oldest window entry and drifts its probe and
// service EWMAs back toward neutral, so stale evidence (good or bad) fades
// instead of pinning the score forever. Callers decide what a tick means —
// streamd's prober ticks once per probe cycle; tests tick explicitly — which
// keeps decay deterministic.
func (s *Scoreboard) Tick() {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := s.cfg.decayFactor()
	for _, d := range s.devs {
		if d.opsSinceTick == 0 {
			d.decayWindow()
			if d.svcSamples > 0 {
				d.svcRatio = 1 + (d.svcRatio-1)*f
			}
			if d.probeSamples > 0 {
				d.probeHealth = 1 - (1-d.probeHealth)*f
			}
		}
		d.opsSinceTick = 0
	}
}

// Score returns device i's current composite health score in [0, 1].
func (s *Scoreboard) Score(i int) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dev(i).score(s.cfg)
}

// Quarantined reports device i's current state.
func (s *Scoreboard) Quarantined(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dev(i).quarantined
}

// QuarantinedCount returns how many devices are currently quarantined — the
// serving layer's degradation gauge.
func (s *Scoreboard) QuarantinedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, d := range s.devs {
		if d.quarantined {
			n++
		}
	}
	return n
}

// DeviceStats is one device's lifetime counters.
type DeviceStats struct {
	Quarantined bool
	Score       float64 // current composite health score
	Ops         uint64  // device-routed batches (including probes)
	Faults      uint64  // of which faulted
	Probes      uint64  // probe batches + diagnostic probes
	ProbeFails  uint64  // of which failed
	Quarantines uint64  // times the device was quarantined
	Readmits    uint64  // times it was re-admitted
}

// Snapshot returns per-device lifetime counters, indexed by device.
func (s *Scoreboard) Snapshot() []DeviceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DeviceStats, len(s.devs))
	for i, d := range s.devs {
		out[i] = DeviceStats{
			Quarantined: d.quarantined,
			Score:       d.score(s.cfg),
			Ops:         d.totalOps,
			Faults:      d.totalFaults,
			Probes:      d.totalProbes,
			ProbeFails:  d.probeFails,
			Quarantines: d.quarantines,
			Readmits:    d.readmits,
		}
	}
	return out
}
