// Package health is the per-device fault-rate scoreboard behind the serving
// layer's graceful degradation: it watches the outcome of every batch routed
// to a simulated GPU, quarantines a device whose recent fault rate trips a
// threshold, reroutes the quarantined device's work to the CPU fallback
// paths (which the dedup and mandel fault-tolerance layers already prove
// bit-identical), and re-admits the device after a run of clean probe
// batches.
//
// This is the CrystalGPU lesson applied to the serving stack: a degraded
// accelerator should cost throughput, not correctness or availability, and
// the routing decision should be automatic and reversible. The window is
// op-counted rather than wall-clocked so quarantine decisions are a pure
// function of the outcome sequence — deterministic under the chaos harness's
// seeded fault schedules.
//
// All methods are safe for concurrent use: every pipeline worker replica
// consults one shared Scoreboard.
package health

import "sync"

// Config sizes a Scoreboard. The zero value tracks one device with the
// documented defaults.
type Config struct {
	// Devices is the number of devices tracked (default 1).
	Devices int
	// Window is the sliding window of recent per-device batch outcomes the
	// fault rate is computed over (default 32).
	Window int
	// MinSamples is the minimum number of outcomes in the window before the
	// rate can trip quarantine — a single early fault must not condemn a
	// device (default 8).
	MinSamples int
	// Threshold is the windowed fault rate at or above which a device is
	// quarantined (default 0.5).
	Threshold float64
	// ProbeEvery routes every Nth batch of a quarantined device to the
	// device anyway as a health probe; the rest go to the CPU (default 8).
	ProbeEvery int
	// ReadmitAfter is the number of consecutive clean probes that re-admit
	// a quarantined device (default 3).
	ReadmitAfter int
	// OnTransition, when set, is called (outside the scoreboard lock) after
	// a device is quarantined or re-admitted — the server's metrics hook.
	OnTransition func(dev int, quarantined bool)
}

func (c Config) devices() int {
	if c.Devices <= 0 {
		return 1
	}
	return c.Devices
}

func (c Config) window() int {
	if c.Window <= 0 {
		return 32
	}
	return c.Window
}

func (c Config) minSamples() int {
	if c.MinSamples <= 0 {
		return 8
	}
	if c.MinSamples > c.window() {
		return c.window()
	}
	return c.MinSamples
}

func (c Config) threshold() float64 {
	if c.Threshold <= 0 {
		return 0.5
	}
	return c.Threshold
}

func (c Config) probeEvery() int {
	if c.ProbeEvery <= 0 {
		return 8
	}
	return c.ProbeEvery
}

func (c Config) readmitAfter() int {
	if c.ReadmitAfter <= 0 {
		return 3
	}
	return c.ReadmitAfter
}

// Route is the scoreboard's verdict for one batch.
type Route struct {
	// Device: run the batch on its device. False reroutes it to the CPU
	// fallback path.
	Device bool
	// Probe marks a device-routed batch from a quarantined device — its
	// outcome feeds the re-admission streak instead of the fault window.
	Probe bool
}

// device is one device's tracked state.
type device struct {
	outcomes []bool // ring buffer of recent outcomes, true = fault
	next     int    // ring write index
	filled   int    // live entries in the ring
	faults   int    // faults among live entries

	quarantined bool
	skips       int // batches rerouted since the last probe
	cleanProbes int // consecutive clean probes while quarantined

	totalOps    uint64
	totalFaults uint64
	quarantines uint64
	readmits    uint64
}

// faultRate is the windowed fault rate; zero until the window has entries.
func (d *device) faultRate() float64 {
	if d.filled == 0 {
		return 0
	}
	return float64(d.faults) / float64(d.filled)
}

// record pushes one outcome into the sliding window.
func (d *device) record(faulted bool) {
	if d.filled == len(d.outcomes) {
		if d.outcomes[d.next] {
			d.faults--
		}
	} else {
		d.filled++
	}
	d.outcomes[d.next] = faulted
	if faulted {
		d.faults++
	}
	d.next = (d.next + 1) % len(d.outcomes)
}

// reset clears the sliding window (after re-admission the device starts with
// a clean slate — its pre-quarantine history must not re-trip it instantly).
func (d *device) reset() {
	for i := range d.outcomes {
		d.outcomes[i] = false
	}
	d.next, d.filled, d.faults = 0, 0, 0
}

// Scoreboard tracks per-device fault rates and quarantine state.
type Scoreboard struct {
	cfg  Config
	mu   sync.Mutex
	devs []*device
}

// New builds a scoreboard from cfg.
func New(cfg Config) *Scoreboard {
	s := &Scoreboard{cfg: cfg, devs: make([]*device, cfg.devices())}
	for i := range s.devs {
		s.devs[i] = &device{outcomes: make([]bool, cfg.window())}
	}
	return s
}

// Devices returns the tracked device count.
func (s *Scoreboard) Devices() int { return len(s.devs) }

// dev clamps an out-of-range index to device 0 rather than panicking — the
// router's modulo should make this unreachable, but a scoreboard must never
// take the serving path down.
func (s *Scoreboard) dev(i int) *device {
	if i < 0 || i >= len(s.devs) {
		return s.devs[0]
	}
	return s.devs[i]
}

// Route decides where device i's next batch runs: healthy devices take
// everything; quarantined devices take only every ProbeEvery-th batch, as a
// probe.
func (s *Scoreboard) Route(i int) Route {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := s.dev(i)
	if !d.quarantined {
		return Route{Device: true}
	}
	d.skips++
	if d.skips >= s.cfg.probeEvery() {
		d.skips = 0
		return Route{Device: true, Probe: true}
	}
	return Route{}
}

// Record feeds the outcome of a device-routed batch back (r as returned by
// Route; rerouted batches are not recorded — the CPU path says nothing about
// the device). faulted marks any fault-injector-surfaced error during the
// batch: an absorbed retry, a stage degraded to the CPU, or device loss.
func (s *Scoreboard) Record(i int, r Route, faulted bool) {
	if !r.Device {
		return
	}
	var fire func(int, bool)
	var dev int
	s.mu.Lock()
	d := s.dev(i)
	d.totalOps++
	if faulted {
		d.totalFaults++
	}
	switch {
	case d.quarantined && r.Probe:
		if faulted {
			d.cleanProbes = 0
		} else {
			d.cleanProbes++
			if d.cleanProbes >= s.cfg.readmitAfter() {
				d.quarantined = false
				d.readmits++
				d.reset()
				fire, dev = s.cfg.OnTransition, i
			}
		}
	case !d.quarantined:
		d.record(faulted)
		if d.filled >= s.cfg.minSamples() && d.faultRate() >= s.cfg.threshold() {
			d.quarantined = true
			d.quarantines++
			d.cleanProbes = 0
			d.skips = 0
			fire, dev = s.cfg.OnTransition, i
		}
	}
	quarantined := d.quarantined
	s.mu.Unlock()
	if fire != nil {
		fire(dev, quarantined)
	}
}

// Quarantined reports device i's current state.
func (s *Scoreboard) Quarantined(i int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dev(i).quarantined
}

// QuarantinedCount returns how many devices are currently quarantined — the
// serving layer's degradation gauge.
func (s *Scoreboard) QuarantinedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, d := range s.devs {
		if d.quarantined {
			n++
		}
	}
	return n
}

// DeviceStats is one device's lifetime counters.
type DeviceStats struct {
	Quarantined bool
	Ops         uint64 // device-routed batches (including probes)
	Faults      uint64 // of which faulted
	Quarantines uint64 // times the device was quarantined
	Readmits    uint64 // times it was re-admitted
}

// Snapshot returns per-device lifetime counters, indexed by device.
func (s *Scoreboard) Snapshot() []DeviceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]DeviceStats, len(s.devs))
	for i, d := range s.devs {
		out[i] = DeviceStats{
			Quarantined: d.quarantined,
			Ops:         d.totalOps,
			Faults:      d.totalFaults,
			Quarantines: d.quarantines,
			Readmits:    d.readmits,
		}
	}
	return out
}
